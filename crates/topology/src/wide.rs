//! 4-wide unrolled word kernels (u64x4-style manual SIMD in std).
//!
//! Every dense-bitset hot loop in the workspace — `NodeSet` bulk ops, the
//! hypercube neighbourhood expansion, and the `ContaminationField` spread /
//! rebuild wave floods — bottoms out in a pass over `&[u64]` words. A
//! straightforward `for` over single words can leave the vector units
//! idle once the loop also folds a data-dependent `grew` flag or writes
//! two destinations. The kernels here process **four words per
//! iteration** over `chunks_exact` splits viewed as `[u64; 4]` arrays —
//! the fixed-size view erases every bounds check, so the backend lowers
//! each lane body to 256-bit ops where available — with a lane-wise `any`
//! accumulator folded once at the end so the wave kernels carry no
//! serial reduction in the hot loop.
//!
//! Each kernel keeps its single-word reference implementation
//! (`*_scalar`) alongside: the differential test battery
//! (`topology/tests/wide_differential.rs` and the intruder equivalence
//! suite) holds the wide paths bit-identical to the references on every
//! sampled input, including tail lengths not divisible by four.
//!
//! Safety: everything is plain safe indexing on `chunks_exact`-style
//! splits; the crate-level `#![forbid(unsafe_code)]` applies.

/// Words processed per unrolled iteration.
pub const LANES: usize = 4;

/// View a 4-word chunk as a fixed-size array: the `chunks_exact` family
/// guarantees the length, and the array type erases every bounds check in
/// the lane bodies (indexed chunk writes defeat vectorisation entirely —
/// measured 0.4–0.8x of the plain word loop before this shape).
#[inline(always)]
fn lanes(chunk: &[u64]) -> &[u64; LANES] {
    chunk.try_into().expect("chunks_exact yields LANES words")
}

/// Mutable counterpart of [`lanes`].
#[inline(always)]
fn lanes_mut(chunk: &mut [u64]) -> &mut [u64; LANES] {
    chunk.try_into().expect("chunks_exact yields LANES words")
}

/// `dst |= src`, 4 words per iteration.
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word-slice length mismatch");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let dc = lanes_mut(dc);
        let sc = lanes(sc);
        for k in 0..LANES {
            dc[k] |= sc[k];
        }
    }
    for (dw, &sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw |= sw;
    }
}

/// Single-word reference for [`or_assign`].
pub fn or_assign_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word-slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// `dst &= src`, 4 words per iteration.
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word-slice length mismatch");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let dc = lanes_mut(dc);
        let sc = lanes(sc);
        for k in 0..LANES {
            dc[k] &= sc[k];
        }
    }
    for (dw, &sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw &= sw;
    }
}

/// Single-word reference for [`and_assign`].
pub fn and_assign_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word-slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= s;
    }
}

/// `dst ^= src`, 4 words per iteration.
pub fn xor_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word-slice length mismatch");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let dc = lanes_mut(dc);
        let sc = lanes(sc);
        for k in 0..LANES {
            dc[k] ^= sc[k];
        }
    }
    for (dw, &sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw ^= sw;
    }
}

/// Single-word reference for [`xor_assign`].
pub fn xor_assign_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word-slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// `dst &= !src` (set difference), 4 words per iteration.
pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word-slice length mismatch");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let dc = lanes_mut(dc);
        let sc = lanes(sc);
        for k in 0..LANES {
            dc[k] &= !sc[k];
        }
    }
    for (dw, &sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw &= !sw;
    }
}

/// Single-word reference for [`andnot_assign`].
pub fn andnot_assign_scalar(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word-slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d &= !s;
    }
}

/// Population count over a word slice, 4 words per iteration with
/// independent lane accumulators (no popcnt → add dependency chain).
pub fn count_ones(words: &[u64]) -> usize {
    let chunks = words.chunks_exact(LANES);
    let tail = chunks.remainder();
    let mut acc = [0usize; LANES];
    for chunk in chunks {
        let chunk = lanes(chunk);
        for k in 0..LANES {
            acc[k] += chunk[k].count_ones() as usize;
        }
    }
    let mut total: usize = acc.iter().sum();
    for w in tail {
        total += w.count_ones() as usize;
    }
    total
}

/// Single-word reference for [`count_ones`].
pub fn count_ones_scalar(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// One wave of an accumulating flood: `next &= !acc & !blocked; acc |=
/// next`. Returns whether any bit survived (the flood grew).
///
/// This is the fused inner step of both hypercube wave floods: contiguity
/// BFS (`acc` = reached, `blocked` = contaminated) and the adversarial
/// spread cascade (`acc` = contaminated, `blocked` = guarded — note
/// `!(c | g) == !c & !g`).
pub fn flood_step(next: &mut [u64], acc: &mut [u64], blocked: &[u64]) -> bool {
    assert_eq!(next.len(), acc.len(), "word-slice length mismatch");
    assert_eq!(next.len(), blocked.len(), "word-slice length mismatch");
    let mut nc = next.chunks_exact_mut(LANES);
    let mut ac = acc.chunks_exact_mut(LANES);
    let mut bc = blocked.chunks_exact(LANES);
    let mut any = [0u64; LANES];
    for ((n, a), b) in (&mut nc).zip(&mut ac).zip(&mut bc) {
        let n = lanes_mut(n);
        let a = lanes_mut(a);
        let b = lanes(b);
        for k in 0..LANES {
            let w = n[k] & !a[k] & !b[k];
            n[k] = w;
            a[k] |= w;
            any[k] |= w;
        }
    }
    let mut any = any.iter().fold(0u64, |x, &y| x | y);
    for ((nw, aw), &bw) in nc
        .into_remainder()
        .iter_mut()
        .zip(ac.into_remainder().iter_mut())
        .zip(bc.remainder())
    {
        let w = *nw & !*aw & !bw;
        *nw = w;
        *aw |= w;
        any |= w;
    }
    any != 0
}

/// Single-word reference for [`flood_step`].
pub fn flood_step_scalar(next: &mut [u64], acc: &mut [u64], blocked: &[u64]) -> bool {
    assert_eq!(next.len(), acc.len(), "word-slice length mismatch");
    assert_eq!(next.len(), blocked.len(), "word-slice length mismatch");
    let mut grew = false;
    for ((nw, aw), &bw) in next.iter_mut().zip(acc.iter_mut()).zip(blocked) {
        *nw &= !*aw & !bw;
        *aw |= *nw;
        grew |= *nw != 0;
    }
    grew
}

/// Non-accumulating wave mask: `next &= !a & !b`. Returns whether any bit
/// survived. Used by the `SafeForest` rebuild flood (which must visit the
/// fresh wave per-node before folding it into `reached`) and by the
/// whole-field unguarded-frontier scan (`a` = contaminated, `b` =
/// guarded).
pub fn mask_clear2(next: &mut [u64], a: &[u64], b: &[u64]) -> bool {
    assert_eq!(next.len(), a.len(), "word-slice length mismatch");
    assert_eq!(next.len(), b.len(), "word-slice length mismatch");
    let mut nc = next.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut any = [0u64; LANES];
    for ((n, av), bv) in (&mut nc).zip(&mut ac).zip(&mut bc) {
        let n = lanes_mut(n);
        let av = lanes(av);
        let bv = lanes(bv);
        for k in 0..LANES {
            let w = n[k] & !av[k] & !bv[k];
            n[k] = w;
            any[k] |= w;
        }
    }
    let mut any = any.iter().fold(0u64, |x, &y| x | y);
    for ((nw, &aw), &bw) in nc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        let w = *nw & !aw & !bw;
        *nw = w;
        any |= w;
    }
    any != 0
}

/// Single-word reference for [`mask_clear2`].
pub fn mask_clear2_scalar(next: &mut [u64], a: &[u64], b: &[u64]) -> bool {
    assert_eq!(next.len(), a.len(), "word-slice length mismatch");
    assert_eq!(next.len(), b.len(), "word-slice length mismatch");
    let mut grew = false;
    for ((nw, &aw), &bw) in next.iter_mut().zip(a).zip(b) {
        *nw &= !aw & !bw;
        grew |= *nw != 0;
    }
    grew
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word pattern without any RNG dependency.
    fn pattern(len: usize, salt: u64) -> Vec<u64> {
        (0..len)
            .map(|i| {
                let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                x ^ (x >> 29)
            })
            .collect()
    }

    #[test]
    fn bulk_ops_match_scalar_on_all_tail_lengths() {
        for len in 0..=13usize {
            let src = pattern(len, 7);
            for (wide, scalar) in [
                (
                    or_assign as fn(&mut [u64], &[u64]),
                    or_assign_scalar as fn(&mut [u64], &[u64]),
                ),
                (and_assign, and_assign_scalar),
                (xor_assign, xor_assign_scalar),
                (andnot_assign, andnot_assign_scalar),
            ] {
                let mut a = pattern(len, 3);
                let mut b = a.clone();
                wide(&mut a, &src);
                scalar(&mut b, &src);
                assert_eq!(a, b, "len = {len}");
            }
            let v = pattern(len, 11);
            assert_eq!(count_ones(&v), count_ones_scalar(&v), "len = {len}");
        }
    }

    #[test]
    fn flood_and_mask_steps_match_scalar() {
        for len in 0..=13usize {
            let blocked = pattern(len, 1);
            let mut next_w = pattern(len, 2);
            let mut next_s = next_w.clone();
            let mut acc_w = pattern(len, 4);
            let mut acc_s = acc_w.clone();
            let gw = flood_step(&mut next_w, &mut acc_w, &blocked);
            let gs = flood_step_scalar(&mut next_s, &mut acc_s, &blocked);
            assert_eq!((gw, &next_w, &acc_w), (gs, &next_s, &acc_s), "len = {len}");

            let a = pattern(len, 5);
            let b = pattern(len, 6);
            let mut m_w = pattern(len, 8);
            let mut m_s = m_w.clone();
            let gw = mask_clear2(&mut m_w, &a, &b);
            let gs = mask_clear2_scalar(&mut m_s, &a, &b);
            assert_eq!((gw, &m_w), (gs, &m_s), "len = {len}");
        }
    }
}
