//! Executable forms of the paper's structural Properties 1–8.
//!
//! Each function *checks the property by exhaustive enumeration* on a given
//! hypercube and returns `Ok(())` or a description of the first violation.
//! They are deliberately independent of the closed forms in
//! [`crate::combinatorics`] wherever possible, so that tests genuinely
//! cross-validate the two.

use crate::broadcast::BroadcastTree;
use crate::combinatorics::binomial;
use crate::hypercube::Hypercube;
use crate::node::Node;

/// Result type of the property checkers.
pub type PropertyResult = Result<(), String>;

/// Property 1: at level 0 there is a unique node of type `T(d)`; at level
/// `l > 0` there are `C(d−k−1, l−1)` nodes of type `T(k)` for
/// `0 ≤ k ≤ d − l`.
pub fn property1_type_census(cube: Hypercube) -> PropertyResult {
    let d = cube.dim();
    let tree = BroadcastTree::new(cube);
    let mut census = vec![vec![0u128; d as usize + 1]; d as usize + 1];
    for x in cube.nodes() {
        census[x.level() as usize][tree.node_type(x) as usize] += 1;
    }
    for l in 0..=d {
        for k in 0..=d {
            let expect = if l == 0 {
                u128::from(k == d)
            } else if k >= d {
                0
            } else {
                binomial(d - k - 1, l - 1)
            };
            if census[l as usize][k as usize] != expect {
                return Err(format!(
                    "Property 1 violated at d={d} l={l} k={k}: counted {} expected {expect}",
                    census[l as usize][k as usize]
                ));
            }
        }
    }
    Ok(())
}

/// Property 2 (implicit, used in Theorem 3): the broadcast tree has
/// `C(d−1, l−1)` leaves at level `l > 0` and `n/2` leaves in total.
pub fn property2_leaf_census(cube: Hypercube) -> PropertyResult {
    let d = cube.dim();
    if d == 0 {
        return Ok(());
    }
    let tree = BroadcastTree::new(cube);
    let mut per_level = vec![0u128; d as usize + 1];
    let mut total = 0u128;
    for x in cube.nodes() {
        if tree.is_leaf(x) {
            per_level[x.level() as usize] += 1;
            total += 1;
        }
    }
    for l in 1..=d {
        let expect = binomial(d - 1, l - 1);
        if per_level[l as usize] != expect {
            return Err(format!(
                "Property 2 violated at d={d} l={l}: {} leaves, expected {expect}",
                per_level[l as usize]
            ));
        }
    }
    if total != 1u128 << (d - 1) {
        return Err(format!("leaf total {total} != n/2"));
    }
    Ok(())
}

/// Property 5: `|C_0| = 1` and `|C_i| = 2^{i−1}` for `0 < i ≤ d`.
pub fn property5_class_sizes(cube: Hypercube) -> PropertyResult {
    let d = cube.dim();
    let mut sizes = vec![0u128; d as usize + 1];
    for x in cube.nodes() {
        sizes[x.msb_position() as usize] += 1;
    }
    for i in 0..=d {
        let expect = if i == 0 { 1 } else { 1u128 << (i - 1) };
        if sizes[i as usize] != expect {
            return Err(format!(
                "Property 5 violated at i={i}: |C_i| = {} expected {expect}",
                sizes[i as usize]
            ));
        }
    }
    Ok(())
}

/// Property 6: all the leaves of the broadcast tree are in `C_d`.
pub fn property6_leaves_in_top_class(cube: Hypercube) -> PropertyResult {
    let d = cube.dim();
    if d == 0 {
        return Ok(());
    }
    let tree = BroadcastTree::new(cube);
    for x in cube.nodes() {
        let leaf = tree.is_leaf(x);
        let in_cd = tree.msb_class(x) == d;
        if leaf != in_cd {
            return Err(format!(
                "Property 6 violated at {x}: leaf={leaf} but msb class {}",
                tree.msb_class(x)
            ));
        }
    }
    Ok(())
}

/// Property 7: for `x ∈ C_i`, `i > 0`: exactly one smaller neighbour is in
/// some `C_j` with `j < i`; every other smaller neighbour is in `C_i`; and
/// every bigger neighbour is in some `C_k` with `k > i`.
pub fn property7_neighbor_classes(cube: Hypercube) -> PropertyResult {
    for x in cube.nodes() {
        let i = x.msb_position();
        if i == 0 {
            continue;
        }
        let mut below = 0;
        for y in cube.smaller_neighbors(x) {
            let j = y.msb_position();
            if j < i {
                below += 1;
            } else if j != i {
                return Err(format!(
                    "Property 7 violated at {x}: smaller neighbour {y} in C_{j} > C_{i}"
                ));
            }
        }
        if below != 1 {
            return Err(format!(
                "Property 7 violated at {x}: {below} smaller neighbours below C_{i}"
            ));
        }
        for y in cube.bigger_neighbors(x) {
            if y.msb_position() <= i {
                return Err(format!(
                    "Property 7 violated at {x}: bigger neighbour {y} not above C_{i}"
                ));
            }
        }
    }
    Ok(())
}

/// Property 8: for `x ∈ C_i`, `i > 1`, there exists a smaller neighbour
/// `y ∈ C_i` of `x` that itself has a smaller neighbour `z ∈ C_{i−1}`.
///
/// **Reproduction note.** As stated in the paper the property has exactly
/// one counterexample in every hypercube: `x = 0…011` (node 3, `i = 2`).
/// Its only same-class smaller neighbour is `0…010`, whose smaller
/// neighbours lie in `C_2` and `C_0` — never `C_1`. The paper's proof
/// (Case 2) silently requires a bit position `j < i − 1`, which does not
/// exist when `i = 2` and bit 1 of `x` is set. The property is used in the
/// proof of Theorem 7 only for nodes that hold waiting agents strictly
/// above the current wavefront, a situation that never arises for node 3
/// (agents reach it only after its parent, node 1, dispatches — at which
/// point the wavefront is already at `C_1`), so Theorem 7 is unaffected.
/// This checker therefore verifies the property for every node *except*
/// node 3, and [`property8_unique_counterexample`] pins down the exception.
pub fn property8_descending_chain(cube: Hypercube) -> PropertyResult {
    for x in cube.nodes() {
        let i = x.msb_position();
        if i <= 1 || x == Node(3) {
            continue;
        }
        let found = cube.smaller_neighbors(x).any(|y| {
            y.msb_position() == i && cube.smaller_neighbors(y).any(|z| z.msb_position() == i - 1)
        });
        if !found {
            return Err(format!("Property 8 violated at {x} (C_{i})"));
        }
    }
    Ok(())
}

/// Lemma 1: if `z ∈ N(y) − NT(y)` lies one level above `y`, then `z` is a
/// broadcast-tree child of some `x` at `y`'s level with `x < y`
/// (numerically, i.e. lexicographically msb-first).
pub fn lemma1_nontree_parents_precede(cube: Hypercube) -> PropertyResult {
    let tree = BroadcastTree::new(cube);
    for y in cube.nodes() {
        for z in tree.non_tree_up_neighbors(y) {
            match tree.parent(z) {
                Some(x) if x < y && x.level() == y.level() => {}
                Some(x) => return Err(format!("Lemma 1 violated: z={z}, parent {x} vs y={y}")),
                None => return Err(format!("Lemma 1: z={z} has no parent")),
            }
        }
    }
    Ok(())
}

/// Pin down the reproduction note on Property 8: node `0…011` is the
/// *unique* node of `H_d` violating the property as literally stated.
pub fn property8_unique_counterexample(cube: Hypercube) -> PropertyResult {
    let violates = |x: Node| -> bool {
        let i = x.msb_position();
        if i <= 1 {
            return false;
        }
        !cube.smaller_neighbors(x).any(|y| {
            y.msb_position() == i && cube.smaller_neighbors(y).any(|z| z.msb_position() == i - 1)
        })
    };
    for x in cube.nodes() {
        let expect = x == Node(3) && cube.dim() >= 2;
        if violates(x) != expect {
            return Err(format!(
                "Property 8 counterexample census wrong at {x}: violates={}",
                violates(x)
            ));
        }
    }
    Ok(())
}

/// Run every property check on one hypercube.
pub fn check_all(cube: Hypercube) -> PropertyResult {
    property1_type_census(cube)?;
    property2_leaf_census(cube)?;
    property5_class_sizes(cube)?;
    property6_leaves_in_top_class(cube)?;
    property7_neighbor_classes(cube)?;
    property8_descending_chain(cube)?;
    property8_unique_counterexample(cube)?;
    lemma1_nontree_parents_precede(cube)?;
    Ok(())
}

/// The unique smaller neighbour of `x ∈ C_i` (`i ≥ 1`) lying in a lower
/// class — `x` with its msb cleared, i.e. its broadcast-tree parent. Named
/// here because Property 7 singles it out.
pub fn descending_neighbor(x: Node) -> Option<Node> {
    let m = x.msb_position();
    if m == 0 {
        None
    } else {
        Some(x.flip(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_properties_hold_up_to_d12() {
        for d in 0..=12 {
            check_all(Hypercube::new(d)).unwrap_or_else(|e| panic!("d={d}: {e}"));
        }
    }

    #[test]
    fn descending_neighbor_is_tree_parent() {
        let cube = Hypercube::new(9);
        let tree = BroadcastTree::new(cube);
        for x in cube.nodes() {
            assert_eq!(descending_neighbor(x), tree.parent(x));
        }
    }
}
