//! Partial grids: induced subgraphs of the `rows × cols` grid.
//!
//! The connected-search scenario (Dereniowski & Urbańska,
//! arXiv:1610.01458) works on *partial grids* — grids with holes. Nodes
//! are the live cells, compacted to ids `0..live_count()` so the
//! intruder kernels (bitsets, occupancy vectors) stay dense regardless
//! of how many cells were punched out. Cell `(0, 0)` is always live and
//! always maps to node 0: it is the scenario homebase.

use crate::graph::Topology;
use crate::node::Node;

/// An induced subgraph of the `rows × cols` grid with compacted node ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialGrid {
    rows: usize,
    cols: usize,
    /// `cell -> node` for live cells, indexed `r * cols + c`.
    node_of_cell: Vec<Option<Node>>,
    /// `node -> (row, col)`.
    cell_of_node: Vec<(usize, usize)>,
    /// Precomputed neighbour lists in compacted ids, sorted ascending.
    adj: Vec<Vec<Node>>,
}

/// The instance generators a grid scenario can ask for, parsed from the
/// wire / CLI spelling (`full`, `holes:<seed>`, `corridor`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GridInstance {
    /// The full grid, no holes.
    Full,
    /// A seeded random-hole instance (about a quarter of the cells
    /// removed, connectivity preserved).
    Holes(u64),
    /// A width-1 serpentine corridor (the path-graph worst case for
    /// guard reuse).
    Corridor,
}

impl GridInstance {
    /// Parse the wire spelling. `full`, `corridor`, or `holes:<seed>`.
    pub fn parse(text: &str) -> Option<GridInstance> {
        match text {
            "full" => Some(GridInstance::Full),
            "corridor" => Some(GridInstance::Corridor),
            other => {
                let seed = other.strip_prefix("holes:")?;
                seed.parse::<u64>().ok().map(GridInstance::Holes)
            }
        }
    }

    /// The wire spelling this instance parses back from.
    pub fn label(&self) -> String {
        match self {
            GridInstance::Full => "full".to_string(),
            GridInstance::Holes(seed) => format!("holes:{seed}"),
            GridInstance::Corridor => "corridor".to_string(),
        }
    }

    /// Build the `side × side` grid this instance describes.
    pub fn build(&self, side: u32) -> PartialGrid {
        let side = side as usize;
        match self {
            GridInstance::Full => PartialGrid::full(side, side),
            GridInstance::Holes(seed) => {
                // Remove about a quarter of the cells; the builder keeps
                // the grid connected and the homebase live.
                PartialGrid::random_holes(side, side, (side * side) / 4, *seed)
            }
            GridInstance::Corridor => PartialGrid::corridor(side, side),
        }
    }
}

impl std::fmt::Display for GridInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// SplitMix64, private to the generators so instances are reproducible
/// from `(rows, cols, holes, seed)` alone.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

impl PartialGrid {
    /// Build the induced subgraph on the cells where `live[r * cols + c]`
    /// is true. Panics if `(0, 0)` is dead or the live cells are
    /// disconnected — generators must hand over a usable instance.
    fn from_mask(rows: usize, cols: usize, live: &[bool]) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid needs at least one cell");
        assert_eq!(live.len(), rows * cols);
        assert!(live[0], "cell (0, 0) is the homebase and must be live");
        let mut node_of_cell = vec![None; rows * cols];
        let mut cell_of_node = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if live[r * cols + c] {
                    node_of_cell[r * cols + c] = Some(Node(cell_of_node.len() as u32));
                    cell_of_node.push((r, c));
                }
            }
        }
        let mut adj = vec![Vec::new(); cell_of_node.len()];
        for (id, &(r, c)) in cell_of_node.iter().enumerate() {
            // Row-major scan order plus "up before down, left before
            // right" makes every list sorted ascending for free... not
            // quite: compacted ids grow row-major, so (r-1, c) < (r, c-1)
            // < (r, c+1) < (r+1, c) as node ids. Push in that order.
            let deltas = [(-1i64, 0i64), (0, -1), (0, 1), (1, 0)];
            for (dr, dc) in deltas {
                let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                if nr < 0 || nc < 0 || nr >= rows as i64 || nc >= cols as i64 {
                    continue;
                }
                if let Some(n) = node_of_cell[nr as usize * cols + nc as usize] {
                    adj[id].push(n);
                }
            }
        }
        let grid = PartialGrid {
            rows,
            cols,
            node_of_cell,
            cell_of_node,
            adj,
        };
        assert!(
            grid.is_connected(),
            "generator produced a disconnected grid"
        );
        grid
    }

    /// The full `rows × cols` grid.
    pub fn full(rows: usize, cols: usize) -> Self {
        Self::from_mask(rows, cols, &vec![true; rows * cols])
    }

    /// A seeded random-hole instance: up to `holes` cells removed, each
    /// removal skipped if it would disconnect the remaining live cells
    /// or hit the homebase. Deterministic in `(rows, cols, holes, seed)`.
    pub fn random_holes(rows: usize, cols: usize, holes: usize, seed: u64) -> Self {
        let mut rng = SplitMix64(seed ^ 0xA076_1D64_78BD_642F);
        let mut live = vec![true; rows * cols];
        let mut removed = 0;
        let mut attempts = 0;
        while removed < holes && attempts < 8 * rows * cols {
            attempts += 1;
            let cell = rng.below((rows * cols) as u64) as usize;
            if cell == 0 || !live[cell] {
                continue;
            }
            live[cell] = false;
            if mask_connected(rows, cols, &live) {
                removed += 1;
            } else {
                live[cell] = true;
            }
        }
        Self::from_mask(rows, cols, &live)
    }

    /// A width-1 serpentine corridor: even rows fully live, odd rows
    /// reduced to the single cell that joins consecutive full rows. The
    /// result is a path graph — the worst case for guard reuse, since
    /// the clean region's boundary never shrinks below the corridor.
    pub fn corridor(rows: usize, cols: usize) -> Self {
        let mut live = vec![false; rows * cols];
        for r in 0..rows {
            if r % 2 == 0 {
                for c in 0..cols {
                    live[r * cols + c] = true;
                }
            } else {
                // Connect row r-1 to row r+1 at alternating ends.
                let c = if r % 4 == 1 { cols - 1 } else { 0 };
                live[r * cols + c] = true;
            }
        }
        Self::from_mask(rows, cols, &live)
    }

    /// Number of grid rows (including rows that lost all their cells).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of live cells (== the node count).
    pub fn live_count(&self) -> usize {
        self.cell_of_node.len()
    }

    /// The node at cell `(r, c)`, if that cell is live.
    pub fn node_at(&self, r: usize, c: usize) -> Option<Node> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        self.node_of_cell[r * self.cols + c]
    }

    /// The cell a node sits on.
    pub fn cell_of(&self, x: Node) -> (usize, usize) {
        self.cell_of_node[x.index()]
    }

    /// The scenario homebase: cell `(0, 0)`, always node 0.
    pub fn homebase(&self) -> Node {
        Node(0)
    }
}

/// BFS connectivity over a live-cell mask, used while punching holes
/// (before any compacted graph exists).
fn mask_connected(rows: usize, cols: usize, live: &[bool]) -> bool {
    let n = live.iter().filter(|&&l| l).count();
    if n == 0 {
        return false;
    }
    let start = match live.iter().position(|&l| l) {
        Some(i) => i,
        None => return false,
    };
    let mut seen = vec![false; rows * cols];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut reached = 1;
    while let Some(cell) = queue.pop_front() {
        let (r, c) = (cell / cols, cell % cols);
        let deltas = [(-1i64, 0i64), (0, -1), (0, 1), (1, 0)];
        for (dr, dc) in deltas {
            let (nr, nc) = (r as i64 + dr, c as i64 + dc);
            if nr < 0 || nc < 0 || nr >= rows as i64 || nc >= cols as i64 {
                continue;
            }
            let ncell = nr as usize * cols + nc as usize;
            if live[ncell] && !seen[ncell] {
                seen[ncell] = true;
                reached += 1;
                queue.push_back(ncell);
            }
        }
    }
    reached == n
}

impl Topology for PartialGrid {
    fn node_count(&self) -> usize {
        self.cell_of_node.len()
    }

    fn neighbors_into(&self, x: Node, out: &mut Vec<Node>) {
        out.clear();
        out.extend_from_slice(&self.adj[x.index()]);
    }

    fn degree(&self, x: Node) -> usize {
        self.adj[x.index()].len()
    }

    fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_counts() {
        let g = PartialGrid::full(4, 5);
        assert_eq!(g.node_count(), 20);
        // Grid edges: r*(c-1) horizontal + (r-1)*c vertical.
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5);
        assert!(g.is_connected());
        assert_eq!(g.homebase(), Node(0));
        assert_eq!(g.cell_of(Node(0)), (0, 0));
    }

    #[test]
    fn neighbor_symmetry_and_degree_bounds() {
        let g = PartialGrid::random_holes(6, 6, 9, 42);
        for x in 0..g.node_count() as u32 {
            let x = Node(x);
            assert!(g.degree(x) <= 4, "grid degree bound");
            for y in g.neighbors_vec(x) {
                assert!(
                    g.neighbors_vec(y).contains(&x),
                    "asymmetric edge {x:?} -> {y:?}"
                );
            }
        }
    }

    #[test]
    fn random_holes_stays_connected_and_deterministic() {
        for seed in 0..16 {
            let g = PartialGrid::random_holes(6, 6, 9, seed);
            assert!(g.is_connected(), "seed {seed} disconnected");
            assert_eq!(g.node_count(), 36 - 9, "seed {seed} removed too few");
            assert_eq!(g, PartialGrid::random_holes(6, 6, 9, seed));
        }
    }

    #[test]
    fn corridor_is_a_path() {
        let g = PartialGrid::corridor(5, 4);
        // A serpentine corridor is a path graph: edges == nodes - 1 and
        // exactly two degree-1 endpoints.
        assert_eq!(g.edge_count(), g.node_count() - 1);
        assert!(g.is_connected());
        let endpoints = (0..g.node_count() as u32)
            .filter(|&x| g.degree(Node(x)) == 1)
            .count();
        assert_eq!(endpoints, 2);
    }

    #[test]
    fn instance_spellings_round_trip() {
        for inst in [
            GridInstance::Full,
            GridInstance::Holes(7),
            GridInstance::Corridor,
        ] {
            assert_eq!(GridInstance::parse(&inst.label()), Some(inst));
        }
        assert_eq!(GridInstance::parse("holes:"), None);
        assert_eq!(GridInstance::parse("holes:x"), None);
        assert_eq!(GridInstance::parse("diamond"), None);
    }

    #[test]
    fn cells_and_nodes_are_inverse_maps() {
        let g = PartialGrid::random_holes(5, 7, 8, 3);
        for x in 0..g.node_count() as u32 {
            let (r, c) = g.cell_of(Node(x));
            assert_eq!(g.node_at(r, c), Some(Node(x)));
        }
        assert_eq!(g.node_at(99, 0), None);
    }
}
