//! The *heap queue* `T(k)` of Definition 1, built explicitly.
//!
//! * `T(0)` is a leaf;
//! * `T(1)` is a node with one child;
//! * `T(k)` is a node with `k` children of types `T(0), …, T(k−1)`.
//!
//! This is the classical binomial tree. The paper's Figure 1 asserts that
//! the broadcast spanning tree of `H_d` is a `T(log n)`; this module builds
//! `T(k)` from the recursive definition — completely independently of any
//! bit arithmetic — so the isomorphism can be *checked* rather than assumed.

use crate::broadcast::BroadcastTree;
use crate::node::Node;

/// An explicit heap queue, stored as a recursion of child trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapQueue {
    /// The type index `k`: this node has `k` children of types
    /// `T(0), …, T(k−1)`.
    pub k: u32,
    /// Children, ordered by *decreasing* type `T(k−1), …, T(0)` (the order
    /// in which Algorithm CLEAN's step 1 visits them is immaterial; this
    /// order makes the recursion direct).
    pub children: Vec<HeapQueue>,
}

impl HeapQueue {
    /// Build `T(k)` from Definition 1.
    pub fn build(k: u32) -> Self {
        let children = (0..k).rev().map(HeapQueue::build).collect();
        HeapQueue { k, children }
    }

    /// Total number of nodes: `2^k`.
    pub fn size(&self) -> u64 {
        1 + self.children.iter().map(HeapQueue::size).sum::<u64>()
    }

    /// Height of the tree: `k` (the longest chain follows
    /// `T(k) → T(k−1) → …`).
    pub fn height(&self) -> u32 {
        self.children
            .iter()
            .map(|c| 1 + c.height())
            .max()
            .unwrap_or(0)
    }

    /// Number of nodes at each depth, `depth 0` being this root. For
    /// `T(d)` this must equal `C(d, l)` at depth `l` — the heap queue is a
    /// BFS tree of the hypercube.
    pub fn level_census(&self) -> Vec<u64> {
        let mut census = vec![0u64; self.height() as usize + 1];
        self.census_into(0, &mut census);
        census
    }

    fn census_into(&self, depth: usize, census: &mut Vec<u64>) {
        if depth >= census.len() {
            census.resize(depth + 1, 0);
        }
        census[depth] += 1;
        for c in &self.children {
            c.census_into(depth + 1, census);
        }
    }

    /// Number of nodes of each type `T(j)` at each depth:
    /// `census[l][j]` = count of type-`T(j)` nodes at depth `l`. Property 1
    /// says this is `C(k−j−1, l−1)` for `l > 0` in a `T(k)`.
    pub fn type_census(&self) -> Vec<Vec<u64>> {
        let mut census = vec![vec![0u64; self.k as usize + 1]; self.height() as usize + 1];
        self.type_census_into(0, &mut census);
        census
    }

    fn type_census_into(&self, depth: usize, census: &mut [Vec<u64>]) {
        census[depth][self.k as usize] += 1;
        for c in &self.children {
            c.type_census_into(depth + 1, census);
        }
    }

    /// Check that the broadcast tree of the hypercube underlying `tree`,
    /// rooted at `at`, is isomorphic to this heap queue, matching children
    /// by type (types are distinct within a node, so the isomorphism is
    /// unique).
    pub fn matches_broadcast_subtree(&self, tree: &BroadcastTree, at: Node) -> bool {
        if tree.node_type(at) != self.k {
            return false;
        }
        // Children of `at` have distinct types k−1, …, 0; ours are stored
        // in decreasing type order.
        let mut bt_children: Vec<Node> = tree.children(at).collect();
        bt_children.sort_by_key(|c| std::cmp::Reverse(tree.node_type(*c)));
        if bt_children.len() != self.children.len() {
            return false;
        }
        self.children
            .iter()
            .zip(bt_children)
            .all(|(hq, node)| hq.matches_broadcast_subtree(tree, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinatorics::{binomial, heap_queue_size};
    use crate::hypercube::Hypercube;

    #[test]
    fn sizes_match_definition() {
        for k in 0..=10 {
            assert_eq!(HeapQueue::build(k).size() as u128, heap_queue_size(k));
        }
    }

    #[test]
    fn height_equals_k() {
        for k in 0..=10 {
            assert_eq!(HeapQueue::build(k).height(), k);
        }
    }

    #[test]
    fn level_census_is_binomial_row() {
        for k in 0..=10u32 {
            let census = HeapQueue::build(k).level_census();
            assert_eq!(census.len() as u32, k + 1);
            for (l, &count) in census.iter().enumerate() {
                assert_eq!(count as u128, binomial(k, l as u32), "T({k}) depth {l}");
            }
        }
    }

    #[test]
    fn type_census_matches_property_1() {
        for k in 1..=9u32 {
            let census = HeapQueue::build(k).type_census();
            // Depth 0: one node of type T(k).
            for (j, &c) in census[0].iter().enumerate() {
                assert_eq!(c, u64::from(j as u32 == k));
            }
            for (l, row) in census.iter().enumerate().skip(1) {
                for (j, &c) in row.iter().enumerate() {
                    let expect = if (j as u32) < k {
                        binomial(k - j as u32 - 1, l as u32 - 1)
                    } else {
                        0
                    };
                    assert_eq!(c as u128, expect, "T({k}) depth {l} type {j}");
                }
            }
        }
    }

    #[test]
    fn broadcast_tree_of_hd_is_heap_queue_td() {
        // Figure 1 of the paper, checked structurally for d up to 10.
        for d in 0..=10 {
            let tree = BroadcastTree::new(Hypercube::new(d));
            let hq = HeapQueue::build(d);
            assert!(
                hq.matches_broadcast_subtree(&tree, Node::ROOT),
                "broadcast tree of H_{d} is not T({d})"
            );
        }
    }

    #[test]
    fn mismatch_is_detected() {
        let tree = BroadcastTree::new(Hypercube::new(4));
        let hq = HeapQueue::build(5);
        assert!(!hq.matches_broadcast_subtree(&tree, Node::ROOT));
    }
}
