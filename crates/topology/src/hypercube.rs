//! The `d`-dimensional hypercube `H_d` with the paper's port labelling.

use serde::{Deserialize, Serialize};

use crate::node::Node;
use crate::MAX_DIMENSION;

/// The `d`-dimensional hypercube: `n = 2^d` nodes, `d·2^{d−1}` edges; nodes
/// are `d`-bit strings and two nodes are adjacent iff their strings differ
/// in exactly one bit.
///
/// Edge labels follow §2 of the paper: the label `λ_x(x, z)` of edge
/// `(x, z)` at `x` is the position (`1..=d`) of the differing bit. In a
/// hypercube the label is the same at both endpoints, so ports double as
/// global dimension numbers.
///
/// ```
/// use hypersweep_topology::{Hypercube, Node};
///
/// let h = Hypercube::new(4);
/// assert_eq!(h.node_count(), 16);
/// assert_eq!(h.edge_count(), 32);
/// // Node 0101 and its neighbour across port 2 (flip bit 2):
/// let x = Node(0b0101);
/// assert_eq!(h.neighbors(x).count(), 4);
/// assert_eq!(x.flip(2), Node(0b0111));
/// assert_eq!(h.distance(Node(0), Node(0b1011)), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Build `H_d`. Panics if `d` exceeds [`MAX_DIMENSION`].
    pub fn new(dim: u32) -> Self {
        assert!(
            dim <= MAX_DIMENSION,
            "hypercube dimension {dim} exceeds MAX_DIMENSION = {MAX_DIMENSION}"
        );
        Hypercube { dim }
    }

    /// The degree `d`.
    #[inline]
    pub const fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of nodes `n = 2^d`.
    #[inline]
    pub const fn node_count(&self) -> usize {
        1usize << self.dim
    }

    /// Number of edges `d·2^{d−1}`.
    #[inline]
    pub const fn edge_count(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            (self.dim as usize) << (self.dim - 1)
        }
    }

    /// Whether `x` is a valid node of this cube.
    #[inline]
    pub fn contains(&self, x: Node) -> bool {
        (x.0 as u64) < (1u64 << self.dim)
    }

    /// Iterate over all nodes in increasing numeric (= the paper's
    /// lexicographic, msb-first) order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        (0..self.node_count() as u32).map(Node)
    }

    /// All neighbours of `x`, in increasing port order.
    pub fn neighbors(&self, x: Node) -> impl Iterator<Item = Node> + '_ {
        debug_assert!(self.contains(x));
        (1..=self.dim).map(move |p| x.flip(p))
    }

    /// The *smaller neighbours* of `x` (Definition 2): those reached through
    /// a port `≤ m(x)`.
    pub fn smaller_neighbors(&self, x: Node) -> impl Iterator<Item = Node> + '_ {
        (1..=x.msb_position()).map(move |p| x.flip(p))
    }

    /// The *bigger neighbours* of `x` (Definition 2): those reached through
    /// a port `> m(x)`. These are exactly `x`'s children in the broadcast
    /// tree.
    pub fn bigger_neighbors(&self, x: Node) -> impl Iterator<Item = Node> + '_ {
        (x.msb_position() + 1..=self.dim).map(move |p| x.flip(p))
    }

    /// Graph distance (= Hamming distance).
    #[inline]
    pub fn distance(&self, x: Node, y: Node) -> u32 {
        x.hamming(y)
    }

    /// A shortest path from `x` to `y` that never climbs above
    /// `max(level(x), level(y))`: it first *clears* the bits of `x` that are
    /// not in `y` (descending to the meet `x ∧ y`), then *sets* the bits of
    /// `y` missing from `x` (ascending to `y`). This is the route the
    /// synchronizer uses to navigate between consecutive nodes of a level —
    /// every intermediate node lies strictly below the common level, hence
    /// in already-clean territory (proof of Theorem 3, component 3).
    ///
    /// The returned vector contains the successive nodes *after* each hop
    /// (so its length is `distance(x, y)`); it is empty when `x == y`.
    pub fn via_meet_path(&self, x: Node, y: Node) -> Vec<Node> {
        let mut path = Vec::with_capacity(self.distance(x, y) as usize);
        let mut cur = x;
        // Clear surplus bits from highest to lowest so the intermediate
        // levels strictly decrease.
        for p in (1..=self.dim).rev() {
            if cur.bit(p) && !y.bit(p) {
                cur = cur.flip(p);
                path.push(cur);
            }
        }
        // Set missing bits from lowest to highest.
        for p in 1..=self.dim {
            if !cur.bit(p) && y.bit(p) {
                cur = cur.flip(p);
                path.push(cur);
            }
        }
        debug_assert_eq!(cur, y);
        path
    }

    /// All nodes at level `l` (exactly `l` ones), in increasing numeric
    /// order — the synchronizer's sweep order within a level.
    pub fn level_nodes(&self, l: u32) -> Vec<Node> {
        // Gosper's hack would avoid the filter, but enumerating 2^d ids is
        // plenty fast for every d the simulators can handle, and keeps the
        // order trivially correct.
        self.nodes().filter(|x| x.level() == l).collect()
    }

    /// The port leading from `x` towards `y`, if they are adjacent.
    pub fn port_towards(&self, x: Node, y: Node) -> Option<u32> {
        let diff = x.0 ^ y.0;
        if diff.count_ones() == 1 {
            Some(diff.trailing_zeros() + 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formulas() {
        for d in 0..=10 {
            let h = Hypercube::new(d);
            assert_eq!(h.node_count(), 1 << d);
            let mut edges = 0usize;
            for x in h.nodes() {
                edges += h.neighbors(x).count();
            }
            assert_eq!(edges / 2, h.edge_count());
        }
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let h = Hypercube::new(7);
        for x in h.nodes() {
            for y in h.neighbors(x) {
                assert_eq!(x.hamming(y), 1);
            }
        }
    }

    #[test]
    fn smaller_and_bigger_partition_the_neighborhood() {
        let h = Hypercube::new(6);
        for x in h.nodes() {
            let s: Vec<_> = h.smaller_neighbors(x).collect();
            let b: Vec<_> = h.bigger_neighbors(x).collect();
            assert_eq!(s.len() + b.len(), h.dim() as usize);
            let mut all: Vec<_> = s.iter().chain(b.iter()).copied().collect();
            all.sort();
            let mut expect: Vec<_> = h.neighbors(x).collect();
            expect.sort();
            assert_eq!(all, expect);
            // Bigger neighbours strictly increase the msb.
            for y in &b {
                assert!(y.msb_position() > x.msb_position());
            }
        }
    }

    #[test]
    fn via_meet_path_is_shortest_and_stays_low() {
        let h = Hypercube::new(8);
        let x = Node(0b1011_0010);
        let y = Node(0b0011_1001);
        let path = h.via_meet_path(x, y);
        assert_eq!(path.len() as u32, h.distance(x, y));
        assert_eq!(*path.last().unwrap(), y);
        let cap = x.level().max(y.level());
        let mut prev = x;
        for &n in &path {
            assert_eq!(prev.hamming(n), 1, "path must use edges");
            assert!(n.level() <= cap, "path climbed above the common level");
            prev = n;
        }
    }

    #[test]
    fn via_meet_path_same_level_stays_strictly_below_until_target() {
        let h = Hypercube::new(6);
        for l in 1..=6 {
            let level = h.level_nodes(l);
            for w in level.windows(2) {
                let path = h.via_meet_path(w[0], w[1]);
                for (i, &n) in path.iter().enumerate() {
                    if i + 1 < path.len() {
                        assert!(n.level() < l, "intermediate node at level {l}");
                    }
                }
                // Theorem 3's bound on consecutive-node navigation.
                let bound = 2 * l.min(h.dim() - l);
                assert!(path.len() as u32 <= bound.max(2));
            }
        }
    }

    #[test]
    fn level_nodes_are_sorted_and_complete() {
        let h = Hypercube::new(8);
        let mut total = 0;
        for l in 0..=8 {
            let v = h.level_nodes(l);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(v.len() as u128, crate::combinatorics::nodes_at_level(8, l));
            total += v.len();
        }
        assert_eq!(total, h.node_count());
    }

    #[test]
    fn port_towards_roundtrip() {
        let h = Hypercube::new(5);
        for x in h.nodes() {
            for p in 1..=5 {
                let y = x.flip(p);
                assert_eq!(h.port_towards(x, y), Some(p));
                assert_eq!(h.port_towards(y, x), Some(p));
            }
            assert_eq!(h.port_towards(x, x), None);
        }
    }
}
