//! The broadcast tree of the hypercube (§2 of the paper).
//!
//! The broadcast tree of `H_d` is the breadth-first spanning tree rooted at
//! `00…0` in which there is a tree edge between `x` and every *bigger
//! neighbour* of `x` (a neighbour reached through a port above `m(x)`).
//! Equivalently: the tree parent of `y ≠ 00…0` is `y` with its most
//! significant bit cleared. The tree is the classical binomial tree, which
//! the paper calls a *heap queue* `T(d)` (Definition 1, Figure 1).

use serde::{Deserialize, Serialize};

use crate::hypercube::Hypercube;
use crate::node::Node;

/// The broadcast (heap-queue) spanning tree of a hypercube.
///
/// The structure is implicit in the bit arithmetic, so this type is a thin,
/// copyable façade over [`Hypercube`]; it exists to give tree-level concepts
/// (parent, children, node type, msb classes) a home with documented paper
/// semantics.
///
/// ```
/// use hypersweep_topology::{BroadcastTree, Hypercube, Node};
///
/// let tree = BroadcastTree::new(Hypercube::new(4));
/// // The root 0000 is a T(4); its children have types T(3)..T(0).
/// assert_eq!(tree.node_type(Node::ROOT), 4);
/// let types: Vec<u32> = tree.children(Node::ROOT).map(|c| tree.node_type(c)).collect();
/// assert_eq!(types, vec![3, 2, 1, 0]);
/// // Parents clear the most significant bit.
/// assert_eq!(tree.parent(Node(0b1010)), Some(Node(0b0010)));
/// // n/2 leaves, all in the top msb class C_d.
/// assert_eq!(tree.leaves().len(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastTree {
    cube: Hypercube,
}

impl BroadcastTree {
    /// The broadcast tree of `H_d`.
    pub fn new(cube: Hypercube) -> Self {
        BroadcastTree { cube }
    }

    /// The underlying hypercube.
    #[inline]
    pub const fn cube(&self) -> Hypercube {
        self.cube
    }

    /// The root (homebase) `00…0`.
    #[inline]
    pub const fn root(&self) -> Node {
        Node::ROOT
    }

    /// Tree parent of `x`: `x` with its most significant bit cleared;
    /// `None` for the root.
    #[inline]
    pub fn parent(&self, x: Node) -> Option<Node> {
        let m = x.msb_position();
        if m == 0 {
            None
        } else {
            Some(x.flip(m))
        }
    }

    /// Tree children of `x` = its bigger neighbours, in increasing port
    /// order. A child reached through port `p` has type `T(d − p)`.
    pub fn children(&self, x: Node) -> impl Iterator<Item = Node> + '_ {
        self.cube.bigger_neighbors(x)
    }

    /// Number of children of `x` — also `x`'s *type* index `k` (the node is
    /// the root of a sub-heap-queue `T(k)`).
    #[inline]
    pub fn node_type(&self, x: Node) -> u32 {
        self.cube.dim() - x.msb_position()
    }

    /// Whether `x` is a leaf of the tree (type `T(0)`). For `d ≥ 1` the
    /// leaves are exactly the nodes of the top msb class `C_d`
    /// (Property 6).
    #[inline]
    pub fn is_leaf(&self, x: Node) -> bool {
        self.node_type(x) == 0
    }

    /// msb class index of `x`: the `i` such that `x ∈ C_i` (§4.1), i.e.
    /// `m(x)`.
    #[inline]
    pub fn msb_class(&self, x: Node) -> u32 {
        x.msb_position()
    }

    /// All nodes of msb class `C_i`, in increasing numeric order.
    pub fn msb_class_nodes(&self, i: u32) -> Vec<Node> {
        if i == 0 {
            return vec![Node::ROOT];
        }
        let base = 1u32 << (i - 1);
        (0..base).map(|low| Node(base | low)).collect()
    }

    /// Depth of `x` in the tree = its level (number of ones): the tree is a
    /// BFS tree.
    #[inline]
    pub fn depth(&self, x: Node) -> u32 {
        x.level()
    }

    /// The tree path from the root to `x` (excluding the root, ending at
    /// `x`): bits of `x` set from least significant position upward. This
    /// is the route reinforcement agents take in Algorithm CLEAN.
    pub fn root_path(&self, x: Node) -> Vec<Node> {
        let mut path = Vec::with_capacity(x.level() as usize);
        let mut cur = Node::ROOT;
        for p in 1..=self.cube.dim() {
            if x.bit(p) {
                cur = Node(cur.0 | (1 << (p - 1)));
                path.push(cur);
            }
        }
        debug_assert_eq!(path.last().copied().unwrap_or(Node::ROOT), x);
        path
    }

    /// Subtree size below (and including) `x`: a `T(k)` node roots `2^k`
    /// nodes.
    #[inline]
    pub fn subtree_size(&self, x: Node) -> u64 {
        1u64 << self.node_type(x)
    }

    /// Leaves of the whole tree in increasing numeric order (`C_d`; there
    /// are `n/2` of them for `d ≥ 1`).
    pub fn leaves(&self) -> Vec<Node> {
        if self.cube.dim() == 0 {
            return vec![Node::ROOT];
        }
        self.msb_class_nodes(self.cube.dim())
    }

    /// The non-tree neighbours of `x` among its bigger neighbours — always
    /// empty (every bigger neighbour is a child); and among nodes one level
    /// *up*: `N(x) − NT(x)` in the paper's Lemma 1 notation, i.e. bigger-
    /// level neighbours reached through unset ports *below* `m(x)`.
    pub fn non_tree_up_neighbors(&self, x: Node) -> Vec<Node> {
        (1..x.msb_position())
            .filter(|&p| !x.bit(p))
            .map(|p| x.flip(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinatorics;

    fn tree(d: u32) -> BroadcastTree {
        BroadcastTree::new(Hypercube::new(d))
    }

    #[test]
    fn parent_child_consistency() {
        let t = tree(8);
        for x in t.cube().nodes() {
            for c in t.children(x) {
                assert_eq!(t.parent(c), Some(x), "child {c} of {x}");
            }
            if let Some(p) = t.parent(x) {
                assert!(t.children(p).any(|c| c == x));
                assert_eq!(t.depth(p) + 1, t.depth(x));
            }
        }
    }

    #[test]
    fn every_non_root_has_exactly_one_parent_edge() {
        // n − 1 tree edges: it is a spanning tree.
        let t = tree(9);
        let mut edges = 0usize;
        for x in t.cube().nodes() {
            edges += t.children(x).count();
        }
        assert_eq!(edges, t.cube().node_count() - 1);
    }

    #[test]
    fn child_types_are_t0_through_tkminus1() {
        // Definition 1: T(k) has children of types T(0), …, T(k−1).
        let t = tree(7);
        for x in t.cube().nodes() {
            let k = t.node_type(x);
            let mut types: Vec<u32> = t.children(x).map(|c| t.node_type(c)).collect();
            types.sort_unstable();
            assert_eq!(types, (0..k).collect::<Vec<_>>(), "node {x}");
        }
    }

    #[test]
    fn root_is_type_d() {
        for d in 0..=10 {
            let t = tree(d);
            assert_eq!(t.node_type(Node::ROOT), d);
        }
    }

    #[test]
    fn leaves_are_msb_class_d() {
        let t = tree(8);
        let leaves = t.leaves();
        assert_eq!(leaves.len() as u128, combinatorics::pow2(7));
        for l in &leaves {
            assert!(t.is_leaf(*l));
            assert_eq!(t.msb_class(*l), 8);
        }
        // And no other node is a leaf.
        let leaf_count = t.cube().nodes().filter(|x| t.is_leaf(*x)).count();
        assert_eq!(leaf_count, leaves.len());
    }

    #[test]
    fn msb_classes_partition() {
        let t = tree(9);
        let mut seen = vec![false; t.cube().node_count()];
        for i in 0..=9 {
            let class = t.msb_class_nodes(i);
            assert_eq!(
                class.len() as u128,
                combinatorics::msb_class_size(i),
                "Property 5 at i={i}"
            );
            for x in class {
                assert_eq!(t.msb_class(x), i);
                assert!(!seen[x.index()]);
                seen[x.index()] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn root_path_follows_tree_edges() {
        let t = tree(10);
        for x in t.cube().nodes() {
            let path = t.root_path(x);
            assert_eq!(path.len() as u32, t.depth(x));
            let mut prev = Node::ROOT;
            for &n in &path {
                assert_eq!(t.parent(n), Some(prev), "not a tree edge");
                prev = n;
            }
        }
    }

    #[test]
    fn subtree_sizes_sum_over_children() {
        let t = tree(9);
        for x in t.cube().nodes() {
            let children_sum: u64 = t.children(x).map(|c| t.subtree_size(c)).sum();
            assert_eq!(t.subtree_size(x), 1 + children_sum);
        }
    }

    #[test]
    fn non_tree_up_neighbors_complement_children_at_next_level() {
        let t = tree(7);
        let h = t.cube();
        for x in h.nodes() {
            let level_up: Vec<Node> = h
                .neighbors(x)
                .filter(|y| y.level() == x.level() + 1)
                .collect();
            let children: Vec<Node> = t.children(x).collect();
            let non_tree = t.non_tree_up_neighbors(x);
            assert_eq!(level_up.len(), children.len() + non_tree.len());
            for z in &non_tree {
                assert!(!children.contains(z));
                assert!(level_up.contains(z));
            }
        }
    }

    #[test]
    fn lemma1_non_tree_up_neighbor_has_numerically_smaller_tree_parent() {
        // Lemma 1: if z ∈ N(y) − NT(y) then z ∈ NT(x) with x < y.
        let t = tree(8);
        for y in t.cube().nodes() {
            for z in t.non_tree_up_neighbors(y) {
                let x = t.parent(z).expect("z has a parent");
                assert!(x < y, "Lemma 1 violated: parent {x} of {z} not below {y}");
                assert_eq!(x.level(), y.level(), "parent is on y's level");
            }
        }
    }
}
