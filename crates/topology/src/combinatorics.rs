//! Exact combinatorics used throughout the paper's analysis.
//!
//! All values are computed exactly in `u128`; for every dimension the crate
//! supports ([`crate::MAX_DIMENSION`]) the intermediate products fit
//! comfortably.

/// Exact binomial coefficient `C(n, k)`.
///
/// Returns `0` when `k > n`, matching the convention the paper invokes in
/// the proof of Lemma 3 ("given `a, b ∈ N` we have `C(a, b) = 0` for
/// `a < b`").
pub fn binomial(n: u32, k: u32) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k as u128 {
        // Multiply before dividing: the running value is always an exact
        // binomial coefficient, so the division is exact.
        acc = acc * (n as u128 - i) / (i + 1);
    }
    acc
}

/// `2^d` as `u128`.
pub fn pow2(d: u32) -> u128 {
    1u128 << d
}

/// Number of nodes at level `l` of `H_d`: `C(d, l)`.
pub fn nodes_at_level(d: u32, l: u32) -> u128 {
    binomial(d, l)
}

/// Number of leaves of the broadcast tree at level `l > 0`: `C(d−1, l−1)`
/// (the paper's Property 2 / proof of Theorem 3). Level `0` holds the root,
/// which is a leaf only when `d = 0`.
pub fn leaves_at_level(d: u32, l: u32) -> u128 {
    if l == 0 {
        return u128::from(d == 0);
    }
    binomial(d - 1, l - 1)
}

/// Number of broadcast-tree nodes of type `T(k)` at level `l` (Property 1):
/// one node of type `T(d)` at level 0, and `C(d−k−1, l−1)` nodes of type
/// `T(k)` at level `l > 0`.
pub fn type_count_at_level(d: u32, l: u32, k: u32) -> u128 {
    if l == 0 {
        return u128::from(k == d);
    }
    if k >= d {
        return 0;
    }
    binomial(d - k - 1, l - 1)
}

/// Size of the msb class `C_i` (Property 5): `1` for `i = 0` (just the
/// root), `2^{i−1}` for `1 ≤ i ≤ d`.
pub fn msb_class_size(i: u32) -> u128 {
    if i == 0 {
        1
    } else {
        pow2(i - 1)
    }
}

/// Number of nodes of a heap queue `T(k)` (Definition 1): `2^k`.
///
/// `T(0)` is a leaf (1 node), and `T(k)` has children `T(0), …, T(k−1)`,
/// so `|T(k)| = 1 + Σ_{i<k} 2^i = 2^k`.
pub fn heap_queue_size(k: u32) -> u128 {
    pow2(k)
}

/// Extra agents requested from the root by the synchronizer before cleaning
/// from level `l > 0` to level `l + 1` (Lemma 3):
/// `Σ_{k=2}^{d−l} (k−1)·C(d−k−1, l−1) = C(d, l+1) − C(d−1, l)`.
///
/// Both sides are computed by [`lemma3_extra_agents_sum`] and this closed
/// form; tests assert they agree.
pub fn lemma3_extra_agents(d: u32, l: u32) -> u128 {
    debug_assert!(l >= 1);
    binomial(d, l + 1).saturating_sub(binomial(d - 1, l))
}

/// The left-hand side of Lemma 3 evaluated as the literal sum
/// `Σ_{k=2}^{d−l} (k−1)·C(d−k−1, l−1)`.
pub fn lemma3_extra_agents_sum(d: u32, l: u32) -> u128 {
    debug_assert!(l >= 1);
    (2..=d.saturating_sub(l))
        .map(|k| (k as u128 - 1) * type_count_at_level(d, l, k))
        .sum()
}

/// Workers (non-synchronizer agents) simultaneously engaged while cleaning
/// from level `l` to level `l + 1` by Algorithm CLEAN:
/// the `C(d, l)` guards of level `l` plus Lemma 3's extras, which simplifies
/// to `C(d, l+1) + C(d−1, l−1)` (the quantity maximized in Lemma 4).
pub fn clean_workers_at_phase(d: u32, l: u32) -> u128 {
    if l == 0 {
        // Phase 0→1 moves one distinct agent to each of the root's d
        // children.
        return d as u128;
    }
    binomial(d, l) + lemma3_extra_agents(d, l)
}

/// Team size required by Algorithm CLEAN (Theorem 2 / Lemma 4): the maximum
/// over phases of [`clean_workers_at_phase`], plus one for the synchronizer.
///
/// For even `d` the maximum is attained at `l = d/2 − 1` and `l = d/2`, with
/// value `C(d, d/2) + C(d−1, d/2 − 2)`; see [`lemma4_peak_even`].
///
/// ```
/// use hypersweep_topology::combinatorics::clean_team_size;
/// assert_eq!(clean_team_size(6), 26);   // H_6: 25 workers + synchronizer
/// assert_eq!(clean_team_size(10), 337);
/// ```
pub fn clean_team_size(d: u32) -> u128 {
    let peak = (0..d)
        .map(|l| clean_workers_at_phase(d, l))
        .max()
        .unwrap_or(0);
    peak + 1
}

/// Lemma 4's closed-form peak for even `d ≥ 4`:
/// `C(d, d/2) + C(d−1, d/2 − 2) + 1` (synchronizer included).
pub fn lemma4_peak_even(d: u32) -> u128 {
    debug_assert!(d % 2 == 0 && d >= 4);
    binomial(d, d / 2) + binomial(d - 1, d / 2 - 2) + 1
}

/// The odd-degree analogue of Lemma 4 (the paper assumes even `d` "for
/// ease of discussion"; these are the "minor technical modifications"):
/// for odd `d ≥ 3` the phase maximum is attained uniquely at
/// `l = (d−1)/2`, with value `C(d, (d+1)/2) + C(d−1, (d−3)/2) + 1`
/// (synchronizer included).
pub fn lemma4_peak_odd(d: u32) -> u128 {
    debug_assert!(d % 2 == 1 && d >= 3);
    binomial(d, d.div_ceil(2)) + binomial(d - 1, (d - 3) / 2) + 1
}

/// Total moves performed by the non-synchronizer agents of Algorithm CLEAN
/// (Theorem 3): `Σ_{l=1}^{d} 2l·C(d−1, l−1) = (n/2)(log n + 1)` with
/// `n = 2^d`.
pub fn clean_agent_moves(d: u32) -> u128 {
    // (n/2)(d + 1)
    pow2(d - 1) * (d as u128 + 1)
}

/// The same quantity evaluated as the literal sum `Σ_l 2l·C(d−1, l−1)`.
pub fn clean_agent_moves_sum(d: u32) -> u128 {
    (1..=d).map(|l| 2 * l as u128 * leaves_at_level(d, l)).sum()
}

/// Synchronizer moves spent escorting agents down broadcast-tree edges
/// (component 4 of Theorem 3's proof): every tree edge is travelled twice,
/// `2(n − 1)` in total.
pub fn clean_sync_escort_moves(d: u32) -> u128 {
    2 * (pow2(d) - 1)
}

/// Total moves of the visibility strategy (Theorem 8): every agent walks
/// root→leaf once, `Σ_l l·C(d−1, l−1) = (n/4)(log n + 1)`.
pub fn visibility_moves(d: u32) -> u128 {
    match d {
        0 => 0,
        1 => 1,
        _ => pow2(d - 2) * (d as u128 + 1),
    }
}

/// The same quantity evaluated as the literal sum `Σ_l l·C(d−1, l−1)`.
pub fn visibility_moves_sum(d: u32) -> u128 {
    (1..=d).map(|l| l as u128 * leaves_at_level(d, l)).sum()
}

/// Agents employed by the visibility strategy (Theorem 5): `n/2`.
pub fn visibility_agents(d: u32) -> u128 {
    if d == 0 {
        1
    } else {
        pow2(d - 1)
    }
}

/// Agents dispatched from node type `T(k)` to its bigger neighbour of type
/// `T(i)` under Algorithm CLEAN WITH VISIBILITY: `1` for `i = 0`, `2^{i−1}`
/// for `0 < i < k`.
pub fn visibility_dispatch(i: u32) -> u128 {
    if i == 0 {
        1
    } else {
        pow2(i - 1)
    }
}

/// Agents a node of type `T(k)` waits for before dispatching under the
/// visibility rule: `2^{k−1}` for `k ≥ 1`, `1` for a leaf.
pub fn visibility_need(k: u32) -> u128 {
    if k == 0 {
        1
    } else {
        pow2(k - 1)
    }
}

/// Moves of the cloning variant (§5): one traversal per broadcast-tree
/// edge, `n − 1`.
pub fn cloning_moves(d: u32) -> u128 {
    pow2(d) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(10, 4), 210);
        assert_eq!(binomial(4, 7), 0);
    }

    #[test]
    fn binomial_pascal_rule() {
        for n in 1..=40u32 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k),
                    binomial(n - 1, k - 1) + binomial(n - 1, k),
                    "Pascal fails at ({n},{k})"
                );
            }
        }
    }

    #[test]
    fn binomial_row_sums_to_pow2() {
        for n in 0..=30u32 {
            let s: u128 = (0..=n).map(|k| binomial(n, k)).sum();
            assert_eq!(s, pow2(n));
        }
    }

    #[test]
    fn binomial_large_exact() {
        // C(28, 14) = 40116600
        assert_eq!(binomial(28, 14), 40_116_600);
        // C(50, 25), exact value
        assert_eq!(binomial(50, 25), 126_410_606_437_752);
    }

    #[test]
    fn type_counts_sum_to_level_size() {
        // Property 1 consistency: summing the type census over k gives the
        // number of nodes at the level.
        for d in 1..=12u32 {
            for l in 0..=d {
                let total: u128 = (0..=d).map(|k| type_count_at_level(d, l, k)).sum();
                assert_eq!(total, nodes_at_level(d, l), "d={d} l={l}");
            }
        }
    }

    #[test]
    fn leaves_sum_to_half_the_cube() {
        // Σ_l C(d−1, l−1) = 2^{d−1}: the broadcast tree has n/2 leaves.
        for d in 1..=16u32 {
            let total: u128 = (0..=d).map(|l| leaves_at_level(d, l)).sum();
            assert_eq!(total, pow2(d - 1));
        }
    }

    #[test]
    fn msb_class_sizes_partition_the_cube() {
        for d in 0..=16u32 {
            let total: u128 = (0..=d).map(msb_class_size).sum();
            assert_eq!(total, pow2(d));
        }
    }

    #[test]
    fn lemma3_closed_form_matches_sum() {
        for d in 2..=20u32 {
            for l in 1..d {
                assert_eq!(
                    lemma3_extra_agents(d, l),
                    lemma3_extra_agents_sum(d, l),
                    "Lemma 3 mismatch at d={d} l={l}"
                );
            }
        }
    }

    #[test]
    fn lemma4_closed_form_matches_max() {
        for d in (4..=20u32).step_by(2) {
            assert_eq!(clean_team_size(d), lemma4_peak_even(d), "d={d}");
        }
    }

    #[test]
    fn lemma4_odd_degree_closed_form() {
        // The paper's "minor technical modifications" for odd d, pinned.
        for d in (3..=21u32).step_by(2) {
            assert_eq!(clean_team_size(d), lemma4_peak_odd(d), "d={d}");
        }
        // The peak is attained uniquely at l = (d−1)/2 for odd d.
        for d in (5..=21u32).step_by(2) {
            let lstar = (d - 1) / 2;
            let peak = clean_workers_at_phase(d, lstar);
            for l in 1..d {
                if l != lstar {
                    assert!(
                        clean_workers_at_phase(d, l) < peak,
                        "d={d}: phase {l} ties the odd-degree peak"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma4_peak_attained_at_central_levels() {
        for d in (4..=20u32).step_by(2) {
            let peak = clean_team_size(d) - 1;
            assert_eq!(clean_workers_at_phase(d, d / 2 - 1), peak);
            assert_eq!(clean_workers_at_phase(d, d / 2), peak);
        }
    }

    #[test]
    fn theorem3_agent_moves_closed_form() {
        for d in 1..=24u32 {
            assert_eq!(clean_agent_moves(d), clean_agent_moves_sum(d), "d={d}");
        }
        // (n/2)(log n + 1) for d = 6: 32 * 7 = 224.
        assert_eq!(clean_agent_moves(6), 224);
    }

    #[test]
    fn theorem8_visibility_moves_closed_form() {
        for d in 2..=24u32 {
            assert_eq!(
                visibility_moves_sum(d),
                pow2(d - 2) * (d as u128 + 1),
                "d={d}"
            );
        }
    }

    #[test]
    fn visibility_need_equals_sum_of_dispatches() {
        // 2^{k−1} = 1 + Σ_{i=1}^{k−1} 2^{i−1} (proof of Theorem 5).
        for k in 1..=30u32 {
            let dispatched: u128 = (0..k).map(visibility_dispatch).sum();
            assert_eq!(dispatched, visibility_need(k));
        }
    }

    #[test]
    fn clean_team_size_d6_is_26() {
        // Hand check: max_l [C(6,l+1) + C(5,l−1)] = 25 at l ∈ {2,3}; +1 sync.
        assert_eq!(clean_team_size(6), 26);
    }

    #[test]
    fn heap_queue_sizes() {
        assert_eq!(heap_queue_size(0), 1);
        assert_eq!(heap_queue_size(1), 2);
        assert_eq!(heap_queue_size(6), 64);
    }

    #[test]
    fn cloning_moves_is_n_minus_one() {
        for d in 1..=20 {
            assert_eq!(cloning_moves(d), pow2(d) - 1);
        }
    }
}
