//! Experiment outputs.

use serde::{Deserialize, Serialize};

use crate::series::Series;
use crate::table::Table;

/// The output of one experiment (one paper table/figure).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id from `DESIGN.md` §3 (`f1`…`f4`, `t2`…`t10`, `e11`,
    /// `e12`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper claims, in one line.
    pub claim: String,
    /// Tables (measured vs predicted).
    pub tables: Vec<Table>,
    /// Figure-shaped series.
    pub series: Vec<Series>,
    /// Pre-rendered textual artifacts (tree drawings, cleaning orders).
    pub artifacts: Vec<String>,
    /// Free-form observations (discrepancies, reproduction notes).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// New empty result.
    pub fn new(id: impl Into<String>, title: impl Into<String>, claim: impl Into<String>) -> Self {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            claim: claim.into(),
            tables: Vec::new(),
            series: Vec::new(),
            artifacts: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Render everything as text (what the CLI prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== {} — {} ==\n",
            self.id.to_uppercase(),
            self.title
        ));
        out.push_str(&format!("claim: {}\n\n", self.claim));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for a in &self.artifacts {
            out.push_str(a);
            out.push('\n');
        }
        for s in &self.series {
            out.push_str(&format!(
                "series '{}': x = {:?}\n             y = {:?}\n",
                s.label, s.x, s.y
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_parts() {
        let mut r = ExperimentResult::new("t5", "visibility agents", "n/2 agents suffice");
        let mut t = Table::new("agents", &["d", "measured"]);
        t.push_row(vec!["3".into(), "4".into()]);
        r.tables.push(t);
        r.series.push(Series::from_points("agents", &[(3, 4.0)]));
        r.notes.push("exact".into());
        let s = r.render();
        assert!(s.contains("T5"));
        assert!(s.contains("n/2 agents"));
        assert!(s.contains("measured"));
        assert!(s.contains("note: exact"));
    }

    #[test]
    fn json_roundtrip() {
        let r = ExperimentResult::new("f1", "broadcast tree", "T(d) structure");
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
