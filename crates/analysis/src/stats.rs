//! Minimal descriptive statistics for seed sweeps.

use serde::{Deserialize, Serialize};

/// Summary of a sample of values.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (lower of the two middle values for even counts).
    pub median: f64,
}

/// Summarize a sample. Panics on an empty slice.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty sample");
    let count = values.len();
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let min = sorted[0];
    let max = sorted[count - 1];
    let mean = values.iter().sum::<f64>() / count as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
    Summary {
        count,
        min,
        max,
        mean,
        std_dev: var.sqrt(),
        median: sorted[(count - 1) / 2],
    }
}

impl Summary {
    /// Compact rendering for table cells: `mean ± std [min..max]`.
    pub fn cell(&self) -> String {
        format!(
            "{:.1} ± {:.1} [{:.0}..{:.0}]",
            self.mean, self.std_dev, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn singleton_sample() {
        let s = summarize(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        summarize(&[]);
    }
}
