//! Crash-safe persistence for the run cache: a checksummed JSONL
//! append-log plus warm-load and compaction, so a daemonized server
//! restarts with yesterday's audited answers instead of a cold cache.
//!
//! The store is one record per line, `<fnv64-hex> <payload-json>\n`,
//! modeled on workgraph's one-object-per-line `graph.jsonl`. Three
//! operations cover the daemon's life cycle:
//!
//! - **Append** ([`CacheStore::appender`]): a background thread receives
//!   every *computed* cache insert through the shards'
//!   [`InsertListener`](crate::cache::InsertListener), batches records, and
//!   appends them; `fsync` happens on [`PersistAppender::flush`] (the
//!   drain path), not per record, so the hot path never blocks on disk.
//! - **Warm-load** ([`CacheStore::warm_load`]): on start, every line is
//!   checksum- and schema-validated; valid records are inserted with
//!   [`ShardedRunCache::insert_ready`] and corrupt or truncated lines are
//!   *skipped*, never fatal — a `kill -9` mid-append leaves at worst a
//!   half-written tail, and the valid prefix must still serve.
//! - **Compact** ([`CacheStore::compact`]): on graceful drain the resident
//!   entries are rewritten as a sorted snapshot via temp-file + atomic
//!   rename, dropping duplicate and evicted records the append log
//!   accumulated.
//!
//! Only deterministic, violation-free `fast`/`audited` outcomes are
//! persisted: engine runs under an explicit policy are cheap to rerun and
//! their keys embed a policy enum with no stable wire form, and a record
//! with violations would need the full violation list to reconstruct its
//! reply byte-identically. Telemetry: `cache.persist_appends`,
//! `cache.warm_loaded`, `cache.persist_skipped`.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use hypersweep_core::SearchOutcome;
use hypersweep_intruder::{CaptureStatus, Verdict};
use hypersweep_sim::{Metrics, TraceSummary};
use hypersweep_telemetry::MetricsRegistry;
use hypersweep_topology::Node;
use serde::{Deserialize, Serialize};

use crate::cache::{Exec, InsertListener, RunKey, StrategyKind};
use crate::sharded::ShardedRunCache;

/// Widest dimension a persisted record may claim. Guards warm-load against
/// a corrupt-but-checksummed record conjuring an absurd key; matches the
/// topology crate's `u32` node-id ceiling.
const PERSIST_MAX_DIM: u32 = 32;

/// Appender queue depth. The producer side (pool workers finishing runs)
/// drops records rather than blocking when the writer falls this far
/// behind — persistence must never backpressure the serving path.
const APPEND_QUEUE: usize = 4096;

/// Records per write batch before the buffer is handed to the OS.
const APPEND_BATCH: usize = 256;

/// FNV-1a 64-bit over the payload bytes. Not cryptographic — it guards
/// against torn writes and bit rot, not adversaries (the state dir is
/// operator-owned).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `CaptureStatus` with a stable wire form (`Node` stays a bare `u32`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum CaptureRecord {
    /// Still at large on the given node.
    Free {
        /// The node it occupies.
        node: u32,
    },
    /// Captured at an event.
    Captured {
        /// Index of the capturing event.
        at_event: u64,
        /// The last node it occupied.
        node: u32,
    },
}

impl CaptureRecord {
    fn from_status(status: CaptureStatus) -> Self {
        match status {
            CaptureStatus::Free(node) => CaptureRecord::Free { node: node.0 },
            CaptureStatus::Captured { at_event, node } => CaptureRecord::Captured {
                at_event,
                node: node.0,
            },
        }
    }

    fn into_status(self) -> CaptureStatus {
        match self {
            CaptureRecord::Free { node } => CaptureStatus::Free(Node(node)),
            CaptureRecord::Captured { at_event, node } => CaptureStatus::Captured {
                at_event,
                node: Node(node),
            },
        }
    }
}

/// One persisted run: the key plus everything the dispatcher reads when
/// building a reply, so a warm-loaded entry answers byte-identically.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PersistRecord {
    strategy: String,
    dim: u32,
    exec: String,
    metrics: Metrics,
    monotone: bool,
    contiguous: bool,
    all_clean: bool,
    capture: Option<CaptureRecord>,
    events: u64,
    trace: Option<TraceSummary>,
}

/// Encode a cache entry, or `None` for entries the store does not cover
/// (engine runs, outcomes with violations).
fn record_of(key: &RunKey, outcome: &SearchOutcome) -> Option<PersistRecord> {
    let exec = match key.exec {
        Exec::Fast => "fast",
        Exec::Audited => "audited",
        Exec::Engine(_) => return None,
    };
    if !outcome.verdict.violations.is_empty() {
        return None;
    }
    Some(PersistRecord {
        strategy: key.strategy.label().to_string(),
        dim: key.dim,
        exec: exec.to_string(),
        metrics: outcome.metrics,
        monotone: outcome.verdict.monotone,
        contiguous: outcome.verdict.contiguous,
        all_clean: outcome.verdict.all_clean,
        capture: outcome.verdict.capture.map(CaptureRecord::from_status),
        events: outcome.verdict.events,
        trace: outcome.trace_summary,
    })
}

/// Decode a record back into a cache entry, or `None` if any field fails
/// validation (unknown strategy/exec, out-of-range dimension).
fn entry_of(record: PersistRecord) -> Option<(RunKey, SearchOutcome)> {
    let strategy = StrategyKind::from_label(&record.strategy)?;
    let exec = match record.exec.as_str() {
        "fast" => Exec::Fast,
        "audited" => Exec::Audited,
        _ => return None,
    };
    if record.dim == 0 || record.dim > PERSIST_MAX_DIM {
        return None;
    }
    let key = RunKey {
        strategy,
        dim: record.dim,
        exec,
    };
    let outcome = SearchOutcome {
        metrics: record.metrics,
        verdict: Verdict {
            monotone: record.monotone,
            contiguous: record.contiguous,
            all_clean: record.all_clean,
            capture: record.capture.map(CaptureRecord::into_status),
            violations: Vec::new(),
            events: record.events,
        },
        trace_summary: record.trace,
    };
    Some((key, outcome))
}

/// One checksummed line, no trailing newline.
fn encode_line(record: &PersistRecord) -> Option<String> {
    let payload = serde_json::to_string(record).ok()?;
    Some(format!("{:016x} {payload}", fnv1a(payload.as_bytes())))
}

/// Parse and validate one line. `None` covers every corruption mode:
/// missing separator, bad hex, checksum mismatch (torn write), JSON that
/// does not parse, and schema-valid records with nonsense fields.
fn decode_line(line: &str) -> Option<(RunKey, SearchOutcome)> {
    let (checksum, payload) = line.split_once(' ')?;
    if checksum.len() != 16 {
        return None;
    }
    let expected = u64::from_str_radix(checksum, 16).ok()?;
    if fnv1a(payload.as_bytes()) != expected {
        return None;
    }
    let record: PersistRecord = serde_json::from_str(payload).ok()?;
    entry_of(record)
}

/// What warm-loading found in the append log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmLoadStats {
    /// Records inserted into the cache.
    pub loaded: u64,
    /// Corrupt, truncated, or invalid lines skipped.
    pub skipped: u64,
    /// Valid records whose key was already resident (duplicate append-log
    /// entries; benign, not corruption).
    pub duplicates: u64,
}

/// The on-disk cache store: one path, three operations (append,
/// warm-load, compact). Constructing it touches no files.
#[derive(Clone, Debug)]
pub struct CacheStore {
    path: PathBuf,
}

impl CacheStore {
    /// A store at `path` (conventionally `<state-dir>/cache.jsonl`).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CacheStore { path: path.into() }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Load every valid record into `cache`, skipping (never failing on)
    /// corrupt lines. A missing file is an empty store. Counts into
    /// `registry` as `cache.warm_loaded` / `cache.persist_skipped`.
    pub fn warm_load(
        &self,
        cache: &ShardedRunCache,
        registry: &MetricsRegistry,
    ) -> io::Result<WarmLoadStats> {
        let file = match File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WarmLoadStats::default()),
            Err(e) => return Err(e),
        };
        let mut stats = WarmLoadStats::default();
        let mut reader = BufReader::new(file);
        let mut line = String::new();
        loop {
            line.clear();
            // read_line (not `lines()`) so a final line without `\n` — the
            // torn-tail case after kill -9 — still reaches the decoder and
            // is counted as skipped rather than silently dropped.
            let n = reader.read_line(&mut line)?;
            if n == 0 {
                break;
            }
            let trimmed = line.trim_end_matches('\n');
            if trimmed.is_empty() {
                continue;
            }
            match decode_line(trimmed) {
                Some((key, outcome)) => {
                    if cache.insert_ready(key, outcome) {
                        stats.loaded += 1;
                    } else {
                        stats.duplicates += 1;
                    }
                }
                None => stats.skipped += 1,
            }
        }
        registry.counter("cache.warm_loaded").add(stats.loaded);
        registry.counter("cache.persist_skipped").add(stats.skipped);
        Ok(stats)
    }

    /// Open the append log (creating parent directories) and start the
    /// writer thread. Hook the returned appender's
    /// [`listener`](PersistAppender::listener) into the cache shards.
    pub fn appender(&self, registry: &MetricsRegistry) -> io::Result<PersistAppender> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let appends = registry.counter("cache.persist_appends");
        let (tx, rx) = mpsc::sync_channel(APPEND_QUEUE);
        let thread = std::thread::Builder::new()
            .name("cache-persist".into())
            .spawn(move || writer_loop(file, rx, appends))?;
        // The writer thread is intentionally detached: it exits when the
        // last sender (held by the cache's insert listener) drops with the
        // cache itself, after the final flush below has already synced.
        drop(thread);
        Ok(PersistAppender { tx })
    }

    /// Rewrite the log as a sorted snapshot of `cache`'s resident entries
    /// (temp file + fsync + atomic rename), dropping duplicates and
    /// evicted records. Returns how many records the snapshot holds.
    pub fn compact(&self, cache: &ShardedRunCache) -> io::Result<u64> {
        let mut lines: Vec<(String, String)> = cache
            .entries_snapshot()
            .iter()
            .filter_map(|(key, outcome)| {
                let line = encode_line(&record_of(key, outcome)?)?;
                Some((key.label(), line))
            })
            .collect();
        lines.sort();
        let tmp = self.path.with_extension("jsonl.tmp");
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut writer = BufWriter::new(File::create(&tmp)?);
        for (_, line) in &lines {
            writeln!(writer, "{line}")?;
        }
        writer.flush()?;
        writer.get_ref().sync_all()?;
        fs::rename(&tmp, &self.path)?;
        Ok(lines.len() as u64)
    }
}

enum Msg {
    Record(String),
    Flush(Sender<()>),
}

/// Handle to the background append thread. Clone-cheap senders feed it
/// through [`PersistAppender::listener`]; [`PersistAppender::flush`] is
/// the drain barrier (write everything queued, `fsync`, ack).
pub struct PersistAppender {
    tx: SyncSender<Msg>,
}

impl PersistAppender {
    /// An [`InsertListener`] that encodes and enqueues every persistable
    /// computed insert. Enqueueing never blocks: if the writer is
    /// [`APPEND_QUEUE`] records behind, the record is dropped (it will be
    /// recomputed after the next restart — correctness is unaffected).
    pub fn listener(&self) -> InsertListener {
        let tx = self.tx.clone();
        Arc::new(move |key, outcome| {
            let Some(record) = record_of(&key, outcome) else {
                return;
            };
            let Some(line) = encode_line(&record) else {
                return;
            };
            match tx.try_send(Msg::Record(line)) {
                Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
            }
        })
    }

    /// Write everything queued, `fsync`, and wait for the ack (bounded;
    /// gives up after 5s if the writer thread died). The drain path calls
    /// this before compacting.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.tx.send(Msg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv_timeout(Duration::from_secs(5));
        }
    }
}

fn writer_loop(file: File, rx: Receiver<Msg>, appends: hypersweep_telemetry::Counter) {
    let mut writer = BufWriter::new(file);
    let write_record = |writer: &mut BufWriter<File>, line: String| {
        if writeln!(writer, "{line}").is_ok() {
            appends.inc();
        }
    };
    loop {
        match rx.recv() {
            Ok(Msg::Record(line)) => {
                write_record(&mut writer, line);
                // Drain whatever else is already queued into this batch.
                let mut batched = 1;
                while batched < APPEND_BATCH {
                    match rx.try_recv() {
                        Ok(Msg::Record(line)) => {
                            write_record(&mut writer, line);
                            batched += 1;
                        }
                        Ok(Msg::Flush(ack)) => {
                            let _ = writer.flush();
                            let _ = writer.get_ref().sync_all();
                            let _ = ack.send(());
                        }
                        Err(_) => break,
                    }
                }
                let _ = writer.flush();
            }
            Ok(Msg::Flush(ack)) => {
                let _ = writer.flush();
                let _ = writer.get_ref().sync_all();
                let _ = ack.send(());
            }
            // All senders gone: the cache (and its listener) dropped.
            Err(_) => {
                let _ = writer.flush();
                let _ = writer.get_ref().sync_all();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::execute_run;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sharded_counting(
        registry: &MetricsRegistry,
        executions: &'static AtomicUsize,
    ) -> ShardedRunCache {
        ShardedRunCache::with_runner_capacity_and_telemetry(
            4,
            |key| {
                executions.fetch_add(1, Ordering::SeqCst);
                execute_run(key)
            },
            None,
            registry,
        )
    }

    fn temp_store(name: &str) -> CacheStore {
        let path =
            std::env::temp_dir().join(format!("hypersweep-persist-{name}-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        CacheStore::new(path)
    }

    /// Run a small audited workload against a persisting cache and return
    /// the store (flushed) plus what was computed.
    fn populate(store: &CacheStore, registry: &MetricsRegistry) -> Vec<RunKey> {
        let cache = ShardedRunCache::with_capacity_and_telemetry(4, None, registry);
        let appender = store.appender(registry).expect("open append log");
        cache.set_insert_listener(appender.listener());
        let keys = vec![
            RunKey::audited(StrategyKind::Clean, 4),
            RunKey::audited(StrategyKind::Visibility, 3),
            RunKey::fast(StrategyKind::Flood, 5),
        ];
        for key in &keys {
            cache.get_or_run(*key);
        }
        appender.flush();
        keys
    }

    #[test]
    fn round_trip_is_byte_identical() {
        static EXECUTIONS: AtomicUsize = AtomicUsize::new(0);
        let store = temp_store("round-trip");
        let registry = MetricsRegistry::new();
        let keys = populate(&store, &registry);

        let warm_registry = MetricsRegistry::new();
        let warm = sharded_counting(&warm_registry, &EXECUTIONS);
        let stats = store.warm_load(&warm, &warm_registry).expect("warm load");
        assert_eq!(stats.loaded, keys.len() as u64);
        assert_eq!(stats.skipped, 0);

        for key in &keys {
            let warm_outcome = warm.get_or_run(*key);
            let fresh = execute_run(*key);
            assert_eq!(EXECUTIONS.load(Ordering::SeqCst), 0, "must serve warm");
            // Byte-identity at the record level: every field the reply
            // reads round-trips exactly.
            let a = encode_line(&record_of(key, &warm_outcome).unwrap()).unwrap();
            let b = encode_line(&record_of(key, &fresh).unwrap()).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(warm.hits(), keys.len() as u64);
        let snap = warm_registry.snapshot();
        assert_eq!(snap.counter("cache.warm_loaded"), Some(keys.len() as u64));
        assert_eq!(snap.counter("cache.persist_skipped"), Some(0));
        let _ = fs::remove_file(store.path());
    }

    #[test]
    fn truncated_tail_loads_valid_prefix() {
        static EXECUTIONS: AtomicUsize = AtomicUsize::new(0);
        let store = temp_store("truncated");
        let registry = MetricsRegistry::new();
        let keys = populate(&store, &registry);
        // Tear the last record in half, as a kill -9 mid-append would.
        let contents = fs::read_to_string(store.path()).unwrap();
        let torn = &contents[..contents.len() - 25];
        assert!(!torn.ends_with('\n'));
        fs::write(store.path(), torn).unwrap();

        let warm_registry = MetricsRegistry::new();
        let warm = sharded_counting(&warm_registry, &EXECUTIONS);
        let stats = store.warm_load(&warm, &warm_registry).expect("never fails");
        assert_eq!(stats.loaded, keys.len() as u64 - 1);
        assert_eq!(stats.skipped, 1);
        assert!(warm_registry.snapshot().counter("cache.persist_skipped") > Some(0));
        let _ = fs::remove_file(store.path());
    }

    #[test]
    fn garbage_and_checksum_mismatch_lines_are_skipped() {
        static EXECUTIONS: AtomicUsize = AtomicUsize::new(0);
        let store = temp_store("garbage");
        let registry = MetricsRegistry::new();
        let keys = populate(&store, &registry);
        let contents = fs::read_to_string(store.path()).unwrap();
        let mut lines: Vec<String> = contents.lines().map(str::to_string).collect();
        // A garbage line mid-file…
        lines.insert(1, "not a record at all".to_string());
        // …and a checksum mismatch: valid shape, one payload byte flipped.
        let mut tampered = lines[0].clone();
        tampered.truncate(tampered.len() - 1);
        tampered.push('}');
        tampered.push(' ');
        lines.push(tampered);
        fs::write(store.path(), lines.join("\n")).unwrap();

        let warm_registry = MetricsRegistry::new();
        let warm = sharded_counting(&warm_registry, &EXECUTIONS);
        let stats = store.warm_load(&warm, &warm_registry).expect("never fails");
        assert_eq!(stats.loaded, keys.len() as u64);
        assert_eq!(stats.skipped, 2);
        assert_eq!(
            warm_registry.snapshot().counter("cache.persist_skipped"),
            Some(2)
        );
        let _ = fs::remove_file(store.path());
    }

    #[test]
    fn compact_drops_duplicates_and_round_trips() {
        let store = temp_store("compact");
        let registry = MetricsRegistry::new();
        let keys = populate(&store, &registry);
        // Append the same workload again: the log now has duplicates.
        let registry2 = MetricsRegistry::new();
        populate(&store, &registry2);
        let dirty = fs::read_to_string(store.path()).unwrap();
        assert_eq!(dirty.lines().count(), 2 * keys.len());

        // Warm-load (duplicates are benign), then compact.
        let warm_registry = MetricsRegistry::new();
        let warm = ShardedRunCache::with_capacity_and_telemetry(4, None, &warm_registry);
        let stats = store.warm_load(&warm, &warm_registry).unwrap();
        assert_eq!(stats.loaded, keys.len() as u64);
        assert_eq!(stats.duplicates, keys.len() as u64);
        assert_eq!(stats.skipped, 0);
        let written = store.compact(&warm).unwrap();
        assert_eq!(written, keys.len() as u64);
        let clean = fs::read_to_string(store.path()).unwrap();
        assert_eq!(clean.lines().count(), keys.len());

        // The compacted snapshot still warm-loads everything.
        let again = ShardedRunCache::with_capacity_and_telemetry(4, None, &MetricsRegistry::new());
        let stats = store.warm_load(&again, &MetricsRegistry::new()).unwrap();
        assert_eq!(stats.loaded, keys.len() as u64);
        assert_eq!(stats.skipped, 0);
        let _ = fs::remove_file(store.path());
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let store = temp_store("missing");
        let cache = ShardedRunCache::with_capacity_and_telemetry(2, None, &MetricsRegistry::new());
        let stats = store.warm_load(&cache, &MetricsRegistry::new()).unwrap();
        assert_eq!(stats, WarmLoadStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn engine_and_violating_outcomes_are_not_persisted() {
        let engine_key = RunKey::engine(StrategyKind::Clean, 3, hypersweep_sim::Policy::Fifo);
        let outcome = execute_run(RunKey::fast(StrategyKind::Clean, 3));
        assert!(record_of(&engine_key, &outcome).is_none());

        let fast_key = RunKey::fast(StrategyKind::Clean, 3);
        let mut bad = execute_run(fast_key);
        bad.verdict
            .violations
            .push(hypersweep_intruder::Violation::ContiguityBroken { at_event: 1 });
        assert!(record_of(&fast_key, &bad).is_none());
        assert!(record_of(&fast_key, &execute_run(fast_key)).is_some());
    }

    #[test]
    fn decode_rejects_out_of_range_and_unknown_fields() {
        let key = RunKey::audited(StrategyKind::Clean, 3);
        let outcome = execute_run(key);
        let mut record = record_of(&key, &outcome).unwrap();
        record.dim = PERSIST_MAX_DIM + 1;
        assert!(decode_line(&encode_line(&record).unwrap()).is_none());
        record.dim = 3;
        record.strategy = "unknown".to_string();
        assert!(decode_line(&encode_line(&record).unwrap()).is_none());
        record.strategy = "clean".to_string();
        record.exec = "engine".to_string();
        assert!(decode_line(&encode_line(&record).unwrap()).is_none());
    }
}
