//! Memoized strategy runs shared across experiments.
//!
//! Several experiments execute the *same* strategy run: T2, T3, E11 and E13
//! all trace Algorithm CLEAN's fast path over the fast dimensions; T7 and
//! T10 both run the visibility strategy on the synchronous engine; and so
//! on. A [`RunCache`] keys every engine/fast execution by
//! [`RunKey`] and guarantees each unique configuration executes exactly
//! once per harness invocation, no matter how many experiments request it
//! or from how many worker threads.
//!
//! Strategy runs are deterministic per key (random adversaries are seeded),
//! so a cached [`SearchOutcome`] is indistinguishable from a fresh one and
//! exported JSON is unaffected by caching or execution order.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hypersweep_baselines::{FloodStrategy, FrontierStrategy};
use hypersweep_core::{
    CleanStrategy, CloningStrategy, DispatchOrder, NavigationMode, SearchOutcome, SearchStrategy,
    SynchronousStrategy, VisibilityStrategy,
};
use hypersweep_sim::Policy;
use hypersweep_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use hypersweep_topology::Hypercube;

/// Which strategy (including ablation variants) a run executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Algorithm CLEAN with via-meet navigation (the paper's version).
    Clean,
    /// Algorithm CLEAN with the naive through-root navigation (E13's
    /// ablation).
    CleanThroughRoot,
    /// CLEAN WITH VISIBILITY.
    Visibility,
    /// The cloning variant (§5), largest-subtree-first dispatch.
    Cloning,
    /// The cloning variant with smallest-subtree-first dispatch (E13's
    /// ablation).
    CloningSmallestFirst,
    /// The synchronous variant without visibility (§5).
    Synchronous,
    /// The flood baseline (one agent per node).
    Flood,
    /// The double-frontier baseline.
    Frontier,
}

impl StrategyKind {
    /// Every variant, in declaration order (drives label round-trips and
    /// persisted-record validation).
    pub const ALL: [StrategyKind; 8] = [
        StrategyKind::Clean,
        StrategyKind::CleanThroughRoot,
        StrategyKind::Visibility,
        StrategyKind::Cloning,
        StrategyKind::CloningSmallestFirst,
        StrategyKind::Synchronous,
        StrategyKind::Flood,
        StrategyKind::Frontier,
    ];

    /// Short stable label for timing reports.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Clean => "clean",
            StrategyKind::CleanThroughRoot => "clean-through-root",
            StrategyKind::Visibility => "visibility",
            StrategyKind::Cloning => "cloning",
            StrategyKind::CloningSmallestFirst => "cloning-smallest-first",
            StrategyKind::Synchronous => "synchronous",
            StrategyKind::Flood => "flood",
            StrategyKind::Frontier => "frontier",
        }
    }

    /// Inverse of [`StrategyKind::label`], used when warm-loading persisted
    /// cache records.
    pub fn from_label(label: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// How a run executes: the procedural fast path or the discrete-event
/// engine under a scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Exec {
    /// `SearchStrategy::fast(false)` — procedural, no event trace kept.
    Fast,
    /// `SearchStrategy::fast(true)` — procedural, with the synthesized
    /// trace streamed through the contamination monitor (the server's
    /// `audit` requests).
    Audited,
    /// `SearchStrategy::run(policy)` — full engine with monitors.
    Engine(Policy),
}

/// One unique strategy execution. Equal keys produce identical
/// [`SearchOutcome`]s, which is what makes memoization sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// The strategy to execute.
    pub strategy: StrategyKind,
    /// The hypercube dimension.
    pub dim: u32,
    /// Fast path or engine-with-policy.
    pub exec: Exec,
}

impl RunKey {
    /// A fast-path run.
    pub fn fast(strategy: StrategyKind, dim: u32) -> Self {
        RunKey {
            strategy,
            dim,
            exec: Exec::Fast,
        }
    }

    /// An engine run under `policy`.
    pub fn engine(strategy: StrategyKind, dim: u32, policy: Policy) -> Self {
        RunKey {
            strategy,
            dim,
            exec: Exec::Engine(policy),
        }
    }

    /// A fast-path run streamed through the contamination auditor.
    pub fn audited(strategy: StrategyKind, dim: u32) -> Self {
        RunKey {
            strategy,
            dim,
            exec: Exec::Audited,
        }
    }

    /// Stable label for timing reports, e.g. `clean/d6/fifo`.
    pub fn label(&self) -> String {
        match self.exec {
            Exec::Fast => format!("{}/d{}/fast", self.strategy.label(), self.dim),
            Exec::Audited => format!("{}/d{}/audited", self.strategy.label(), self.dim),
            Exec::Engine(p) => format!("{}/d{}/{}", self.strategy.label(), self.dim, p.name()),
        }
    }
}

/// Execute `key` from scratch. This is the cache's default runner; tests
/// inject their own via [`RunCache::with_runner`].
pub fn execute_run(key: RunKey) -> SearchOutcome {
    let cube = Hypercube::new(key.dim);
    if key.strategy == StrategyKind::Frontier {
        // The frontier baseline has no engine embedding; only its
        // procedural trace is meaningful.
        match key.exec {
            Exec::Fast => return FrontierStrategy::new(cube).outcome(false),
            Exec::Audited => return FrontierStrategy::new(cube).outcome(true),
            Exec::Engine(_) => panic!("the frontier baseline has no engine run ({key:?})"),
        }
    }
    let strategy: Box<dyn SearchStrategy> = match key.strategy {
        StrategyKind::Clean => Box::new(CleanStrategy::new(cube)),
        StrategyKind::CleanThroughRoot => Box::new(CleanStrategy::with_navigation(
            cube,
            NavigationMode::ThroughRoot,
        )),
        StrategyKind::Visibility => Box::new(VisibilityStrategy::new(cube)),
        StrategyKind::Cloning => Box::new(CloningStrategy::new(cube)),
        StrategyKind::CloningSmallestFirst => Box::new(CloningStrategy::with_dispatch_order(
            cube,
            DispatchOrder::SmallestSubtreeFirst,
        )),
        StrategyKind::Synchronous => Box::new(SynchronousStrategy::new(cube)),
        StrategyKind::Flood => Box::new(FloodStrategy::new(cube)),
        StrategyKind::Frontier => unreachable!("handled above"),
    };
    match key.exec {
        Exec::Fast => strategy.fast(false),
        Exec::Audited => strategy.fast(true),
        Exec::Engine(policy) => strategy
            .run(policy)
            .unwrap_or_else(|e| panic!("{} failed: {e}", key.label())),
    }
}

/// Wall-clock record of one executed (cache-missed) run.
#[derive(Clone, Debug)]
pub struct JobTiming {
    /// The run that executed.
    pub key: RunKey,
    /// How long it took.
    pub elapsed: Duration,
}

enum Entry {
    /// Some thread is computing this key; wait on the condvar.
    InFlight,
    /// Computed; `last_used` orders entries for LRU eviction.
    Ready {
        outcome: Arc<SearchOutcome>,
        last_used: u64,
    },
}

/// Map plus the LRU bookkeeping, guarded by one mutex.
struct CacheState {
    entries: HashMap<RunKey, Entry>,
    /// Monotonic access counter driving `last_used`.
    tick: u64,
    /// Maximum number of `Ready` entries kept; `None` = unbounded.
    capacity: Option<usize>,
}

impl CacheState {
    /// Evict least-recently-used `Ready` entries until the bound holds.
    /// In-flight entries are never evicted (someone is waiting on them).
    /// Returns how many entries were dropped.
    fn enforce_capacity(&mut self) -> u64 {
        let Some(cap) = self.capacity else { return 0 };
        let mut evicted = 0;
        loop {
            let ready = self
                .entries
                .values()
                .filter(|e| matches!(e, Entry::Ready { .. }))
                .count();
            if ready <= cap {
                return evicted;
            }
            let oldest = self
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, *k)),
                    Entry::InFlight => None,
                })
                .min_by_key(|(last_used, _)| *last_used)
                .map(|(_, k)| k);
            match oldest {
                Some(key) => {
                    self.entries.remove(&key);
                    evicted += 1;
                }
                None => return evicted,
            }
        }
    }
}

type Runner = dyn Fn(RunKey) -> SearchOutcome + Send + Sync;

/// Callback observing every *computed* insert (cache misses that finished
/// executing). Warm-load inserts via [`RunCache::insert_ready`] do not fire
/// it — the persistence layer would otherwise re-append every record it
/// just loaded.
pub type InsertListener = Arc<dyn Fn(RunKey, &Arc<SearchOutcome>) + Send + Sync>;

/// Lock that recovers from poisoning. The cache's invariants hold at every
/// release point (runs execute outside the lock), so poison only means
/// some *other* thread panicked — which must not wedge this one.
fn recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Live cache counters; these *are* the accounting (the accessors read
/// them back), registered either in a caller-provided registry so a daemon
/// sees them in its snapshots, or in a private one.
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    entries: Gauge,
    run_us: Histogram,
}

impl CacheMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        CacheMetrics {
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            evictions: registry.counter("cache.evictions"),
            entries: registry.gauge("cache.entries"),
            run_us: registry.histogram("cache.run_us"),
        }
    }
}

/// Removes the `InFlight` marker if the runner unwinds, waking waiters so
/// one of them retries instead of blocking forever on an entry nobody is
/// computing. Disarmed on the successful path before `Ready` goes in.
struct InFlightGuard<'a> {
    cache: &'a RunCache,
    key: RunKey,
    armed: bool,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = recover(&self.cache.state);
            if matches!(state.entries.get(&self.key), Some(Entry::InFlight)) {
                state.entries.remove(&self.key);
            }
            drop(state);
            self.cache.ready.notify_all();
        }
    }
}

/// Executed-run timing records kept at most this long; beyond it the
/// fastest half is dropped. A long-running daemon re-executes evicted runs
/// indefinitely, so the log must not grow without bound.
const TIMINGS_HIGH_WATER: usize = 512;

/// Concurrent memo table over [`RunKey`]s.
///
/// The first requester of a key executes it; concurrent requesters of the
/// same key block until the result is ready instead of duplicating work.
/// An optional capacity bounds the number of retained outcomes with
/// least-recently-used eviction, so a long-running server stays in bounded
/// memory (an evicted key simply re-executes on its next request).
pub struct RunCache {
    state: Mutex<CacheState>,
    ready: Condvar,
    metrics: CacheMetrics,
    /// The registry `metrics` lives in; the daemon folds this into its own
    /// snapshot when the cache was built with a private registry.
    registry: MetricsRegistry,
    timings: Mutex<Vec<JobTiming>>,
    runner: Box<Runner>,
    /// Fired (outside the state lock) after each computed insert; see
    /// [`InsertListener`].
    insert_listener: Mutex<Option<InsertListener>>,
}

impl Default for RunCache {
    fn default() -> Self {
        Self::new()
    }
}

impl RunCache {
    /// An unbounded cache backed by [`execute_run`].
    pub fn new() -> Self {
        Self::with_runner(execute_run)
    }

    /// A cache backed by [`execute_run`] keeping at most `capacity`
    /// computed outcomes (`None` = unbounded).
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        let cache = Self::new();
        cache.set_capacity(capacity);
        cache
    }

    /// A capacity-bounded cache whose `cache.*` series live in `registry`,
    /// so a daemon's metrics snapshot sees them directly.
    pub fn with_capacity_and_telemetry(
        capacity: Option<usize>,
        registry: &MetricsRegistry,
    ) -> Self {
        let cache = Self::with_runner_and_telemetry(execute_run, registry);
        cache.set_capacity(capacity);
        cache
    }

    /// An empty unbounded cache backed by a custom runner (for tests).
    pub fn with_runner(runner: impl Fn(RunKey) -> SearchOutcome + Send + Sync + 'static) -> Self {
        // A private registry keeps the accounting accessors live even for
        // callers that never look at telemetry.
        Self::with_runner_and_telemetry(runner, &MetricsRegistry::new())
    }

    /// A cache with both a custom runner and a caller-chosen registry.
    pub fn with_runner_and_telemetry(
        runner: impl Fn(RunKey) -> SearchOutcome + Send + Sync + 'static,
        registry: &MetricsRegistry,
    ) -> Self {
        // A disabled registry would silently zero the accounting the
        // harness relies on; fall back to a private live one.
        let registry = if registry.is_enabled() {
            registry.clone()
        } else {
            MetricsRegistry::new()
        };
        RunCache {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                tick: 0,
                capacity: None,
            }),
            ready: Condvar::new(),
            metrics: CacheMetrics::resolve(&registry),
            registry,
            timings: Mutex::new(Vec::new()),
            runner: Box::new(runner),
            insert_listener: Mutex::new(None),
        }
    }

    /// The registry holding this cache's `cache.*` series.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Bound (or unbound, with `None`) the number of retained outcomes.
    /// Shrinking evicts immediately.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        let mut state = recover(&self.state);
        state.capacity = capacity;
        let evicted = state.enforce_capacity();
        self.metrics.evictions.add(evicted);
        // Maintained as a delta, not `set(ready_count)`: several shards of a
        // sharded cache may share one `cache.entries` gauge, and deltas make
        // the shared cell the aggregate across all of them.
        self.metrics.entries.add(-(evicted as i64));
    }

    /// The current capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        recover(&self.state).capacity
    }

    /// The outcome for `key`, executing it exactly once across all callers.
    ///
    /// If the executing runner panics, the panic propagates to *its*
    /// caller, the in-flight marker is removed, and one blocked waiter
    /// retries the run (counting a fresh miss) — waiters never hang on an
    /// entry nobody is computing.
    pub fn get_or_run(&self, key: RunKey) -> Arc<SearchOutcome> {
        {
            let mut state = recover(&self.state);
            loop {
                match state.entries.get(&key) {
                    Some(Entry::Ready { .. }) => {
                        state.tick += 1;
                        let tick = state.tick;
                        let CacheState { entries, .. } = &mut *state;
                        let Some(Entry::Ready { outcome, last_used }) = entries.get_mut(&key)
                        else {
                            unreachable!("entry observed ready under the same lock");
                        };
                        *last_used = tick;
                        self.metrics.hits.inc();
                        return Arc::clone(outcome);
                    }
                    Some(Entry::InFlight) => {
                        state = self
                            .ready
                            .wait(state)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                    None => {
                        state.entries.insert(key, Entry::InFlight);
                        self.metrics.misses.inc();
                        break;
                    }
                }
            }
        }
        // Execute outside the lock so unrelated keys proceed concurrently.
        // The guard undoes the in-flight marker if the runner unwinds.
        let mut guard = InFlightGuard {
            cache: self,
            key,
            armed: true,
        };
        let start = Instant::now();
        let outcome = Arc::new((self.runner)(key));
        let elapsed = start.elapsed();
        guard.armed = false;
        self.record_timing(JobTiming { key, elapsed });
        self.metrics.run_us.record_duration(elapsed);
        let mut state = recover(&self.state);
        state.tick += 1;
        let tick = state.tick;
        state.entries.insert(
            key,
            Entry::Ready {
                outcome: Arc::clone(&outcome),
                last_used: tick,
            },
        );
        let evicted = state.enforce_capacity();
        self.metrics.evictions.add(evicted);
        // The insert replaced this key's `InFlight` marker with one `Ready`
        // entry; see `set_capacity` for why the gauge moves by deltas.
        self.metrics.entries.add(1 - evicted as i64);
        drop(state);
        self.ready.notify_all();
        let listener = recover(&self.insert_listener).clone();
        if let Some(listener) = listener {
            listener(key, &outcome);
        }
        outcome
    }

    /// Observe every computed insert (see [`InsertListener`]). Later
    /// installs replace earlier ones; `None`-clearing is not needed in
    /// practice (the listener lives as long as the daemon).
    pub fn set_insert_listener(&self, listener: InsertListener) {
        *recover(&self.insert_listener) = Some(listener);
    }

    /// Insert an already-computed outcome for `key` without counting a miss
    /// or firing the insert listener — the warm-load path. Returns `false`
    /// (and leaves the cache unchanged) if the key is already present,
    /// computed or in flight.
    pub fn insert_ready(&self, key: RunKey, outcome: SearchOutcome) -> bool {
        let mut state = recover(&self.state);
        if state.entries.contains_key(&key) {
            return false;
        }
        state.tick += 1;
        let tick = state.tick;
        state.entries.insert(
            key,
            Entry::Ready {
                outcome: Arc::new(outcome),
                last_used: tick,
            },
        );
        let evicted = state.enforce_capacity();
        self.metrics.evictions.add(evicted);
        self.metrics.entries.add(1 - evicted as i64);
        true
    }

    /// Every computed entry currently held, unordered. Touches no LRU
    /// state — snapshotting for compaction must not perturb eviction order.
    pub fn entries_snapshot(&self) -> Vec<(RunKey, Arc<SearchOutcome>)> {
        recover(&self.state)
            .entries
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Ready { outcome, .. } => Some((*k, Arc::clone(outcome))),
                Entry::InFlight => None,
            })
            .collect()
    }

    fn record_timing(&self, timing: JobTiming) {
        let mut timings = recover(&self.timings);
        timings.push(timing);
        if timings.len() > TIMINGS_HIGH_WATER {
            // Keep the slowest half: the summary only ever reports the
            // slowest runs, and totals stop being meaningful on a daemon
            // anyway once eviction forces re-execution.
            timings.sort_by_key(|t| std::cmp::Reverse(t.elapsed));
            timings.truncate(TIMINGS_HIGH_WATER / 2);
        }
    }

    /// Requests served from an already-computed entry (the live
    /// `cache.hits` counter).
    pub fn hits(&self) -> u64 {
        self.metrics.hits.get()
    }

    /// Requests that executed the run (once per unique key; the live
    /// `cache.misses` counter).
    pub fn misses(&self) -> u64 {
        self.metrics.misses.get()
    }

    /// Outcomes dropped by the LRU capacity bound (the live
    /// `cache.evictions` counter).
    pub fn evictions(&self) -> u64 {
        self.metrics.evictions.get()
    }

    /// Computed outcomes currently held.
    pub fn len(&self) -> usize {
        ready_count(&recover(&self.state))
    }

    /// Whether the cache currently holds no computed outcome.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct runs executed so far (bounded on long-running
    /// daemons; see [`RunCache::timings`]).
    pub fn unique_runs(&self) -> usize {
        recover(&self.timings).len()
    }

    /// Wall-clock records of executed runs, slowest first. On a
    /// long-running daemon only the slowest records are retained.
    pub fn timings(&self) -> Vec<JobTiming> {
        let mut t = recover(&self.timings).clone();
        t.sort_by_key(|timing| std::cmp::Reverse(timing.elapsed));
        t
    }

    /// Total time spent executing runs (sum over retained records).
    pub fn total_run_time(&self) -> Duration {
        recover(&self.timings).iter().map(|t| t.elapsed).sum()
    }
}

/// `Ready` entries in the table (in-flight markers are not outcomes).
fn ready_count(state: &CacheState) -> usize {
    state
        .entries
        .values()
        .filter(|e| matches!(e, Entry::Ready { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn dummy_outcome() -> SearchOutcome {
        // Any real run works; the cheapest possible one keeps tests fast.
        execute_run(RunKey::fast(StrategyKind::Clean, 1))
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = RunCache::with_runner(|_| dummy_outcome());
        let a = RunKey::fast(StrategyKind::Clean, 3);
        let b = RunKey::engine(StrategyKind::Clean, 3, Policy::Fifo);
        cache.get_or_run(a);
        cache.get_or_run(a);
        cache.get_or_run(b);
        cache.get_or_run(a);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.unique_runs(), 2);
    }

    #[test]
    fn concurrent_requests_execute_once() {
        static EXECUTIONS: AtomicUsize = AtomicUsize::new(0);
        let cache = Arc::new(RunCache::with_runner(|_| {
            EXECUTIONS.fetch_add(1, Ordering::SeqCst);
            // Widen the race window: all waiters should pile up on the
            // in-flight entry.
            std::thread::sleep(Duration::from_millis(20));
            dummy_outcome()
        }));
        let key = RunKey::fast(StrategyKind::Visibility, 4);
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_run(key)
                })
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(EXECUTIONS.load(Ordering::SeqCst), 1, "ran more than once");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), threads as u64 - 1);
        // Everyone got the same shared outcome.
        for o in &outcomes {
            assert!(Arc::ptr_eq(o, &outcomes[0]));
        }
    }

    #[test]
    fn cached_outcome_equals_recomputed() {
        let cache = RunCache::new();
        let key = RunKey::engine(StrategyKind::Clean, 3, Policy::Random(7));
        let cached = cache.get_or_run(key);
        let fresh = execute_run(key);
        assert_eq!(cached.metrics.worker_moves, fresh.metrics.worker_moves);
        assert_eq!(cached.metrics.team_size, fresh.metrics.team_size);
        assert_eq!(
            cached.metrics.coordinator_moves,
            fresh.metrics.coordinator_moves
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            RunKey::fast(StrategyKind::Clean, 6).label(),
            "clean/d6/fast"
        );
        assert_eq!(
            RunKey::engine(StrategyKind::Visibility, 4, Policy::Random(2)).label(),
            "visibility/d4/random[2]"
        );
    }

    #[test]
    fn audited_exec_runs_the_monitor() {
        let cache = RunCache::new();
        let outcome = cache.get_or_run(RunKey::audited(StrategyKind::Clean, 4));
        assert!(outcome.is_complete());
        let summary = outcome.trace_summary.expect("audited runs are streamed");
        assert!(summary.events > 0);
        assert_eq!(summary.moves, outcome.metrics.total_moves());
        // The unaudited fast run is a distinct key with a vacuous verdict
        // and no summary.
        let fast = cache.get_or_run(RunKey::fast(StrategyKind::Clean, 4));
        assert!(fast.trace_summary.is_none());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn lru_capacity_evicts_least_recently_used() {
        let cache = RunCache::with_runner(|_| dummy_outcome());
        cache.set_capacity(Some(2));
        let a = RunKey::fast(StrategyKind::Clean, 2);
        let b = RunKey::fast(StrategyKind::Clean, 3);
        let c = RunKey::fast(StrategyKind::Clean, 4);
        cache.get_or_run(a);
        cache.get_or_run(b);
        cache.get_or_run(a); // a is now more recent than b
        cache.get_or_run(c); // evicts b
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        cache.get_or_run(a);
        assert_eq!(cache.misses(), 3, "a and c must still be resident");
        cache.get_or_run(b); // b was evicted: re-executes
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.evictions(), 2, "b's return evicts the next victim");
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let cache = RunCache::with_runner(|_| dummy_outcome());
        for d in 1..=5 {
            cache.get_or_run(RunKey::fast(StrategyKind::Flood, d));
        }
        assert_eq!(cache.len(), 5);
        cache.set_capacity(Some(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 3);
        // Unbounding again stops eviction.
        cache.set_capacity(None);
        for d in 6..=9 {
            cache.get_or_run(RunKey::fast(StrategyKind::Flood, d));
        }
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.evictions(), 3);
    }

    #[test]
    fn evicted_outcome_recomputes_identically() {
        let cache = RunCache::with_capacity(Some(1));
        let key = RunKey::audited(StrategyKind::Visibility, 3);
        let first = cache.get_or_run(key);
        cache.get_or_run(RunKey::audited(StrategyKind::Cloning, 3)); // evicts
        let second = cache.get_or_run(key);
        assert!(!Arc::ptr_eq(&first, &second), "must have re-executed");
        assert_eq!(first.metrics.worker_moves, second.metrics.worker_moves);
        assert_eq!(first.trace_summary, second.trace_summary);
    }

    /// A runner that panics must not strand its `InFlight` marker: blocked
    /// waiters wake up, one retries, and (here) the retry succeeds.
    #[test]
    fn panicking_runner_does_not_strand_waiters() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let cache = Arc::new(RunCache::with_runner(|_| {
            if CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                // Give the waiter time to block on the in-flight entry
                // before the executor unwinds.
                std::thread::sleep(Duration::from_millis(30));
                panic!("first run fails (expected in this test)");
            }
            dummy_outcome()
        }));
        let key = RunKey::fast(StrategyKind::Clean, 5);

        let executor = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.get_or_run(key)))
            })
        };
        // Let the executor claim the key first, then pile on a waiter.
        std::thread::sleep(Duration::from_millis(10));
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.get_or_run(key))
        };

        assert!(executor.join().unwrap().is_err(), "first run must panic");
        let outcome = waiter.join().expect("waiter must not deadlock or die");
        assert!(outcome.is_complete());
        assert_eq!(CALLS.load(Ordering::SeqCst), 2, "waiter retried the run");
        // Both attempts counted as misses; the retry's result is cached.
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
        // The cache stays fully usable afterwards.
        cache.get_or_run(key);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn telemetry_registry_sees_live_cache_series() {
        let registry = MetricsRegistry::new();
        let cache = RunCache::with_capacity_and_telemetry(Some(2), &registry);
        assert!(cache.registry().ptr_eq(&registry));
        for d in 1..=3 {
            cache.get_or_run(RunKey::fast(StrategyKind::Clean, d));
        }
        cache.get_or_run(RunKey::fast(StrategyKind::Clean, 3));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cache.misses"), Some(3));
        assert_eq!(snap.counter("cache.hits"), Some(1));
        assert_eq!(snap.counter("cache.evictions"), Some(1));
        assert_eq!(snap.gauge("cache.entries"), Some(2));
        assert_eq!(snap.histogram("cache.run_us").map(|h| h.count), Some(3));
        // The accessors read the same cells.
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn strategy_labels_round_trip() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(StrategyKind::from_label("no-such-strategy"), None);
    }

    #[test]
    fn insert_ready_serves_hits_without_execution() {
        static EXECUTIONS: AtomicUsize = AtomicUsize::new(0);
        let cache = RunCache::with_runner(|_| {
            EXECUTIONS.fetch_add(1, Ordering::SeqCst);
            dummy_outcome()
        });
        let key = RunKey::audited(StrategyKind::Clean, 4);
        assert!(cache.insert_ready(key, execute_run(key)));
        assert!(!cache.insert_ready(key, execute_run(key)), "key occupied");
        let outcome = cache.get_or_run(key);
        assert_eq!(EXECUTIONS.load(Ordering::SeqCst), 0, "served warm");
        assert!(outcome.is_complete());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_ready_respects_capacity() {
        let cache = RunCache::with_capacity(Some(2));
        for d in 1..=4 {
            let key = RunKey::fast(StrategyKind::Flood, d);
            assert!(cache.insert_ready(key, execute_run(key)));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn insert_listener_fires_on_computed_inserts_only() {
        let seen = Arc::new(Mutex::new(Vec::<RunKey>::new()));
        let cache = RunCache::with_runner(|_| dummy_outcome());
        let sink = Arc::clone(&seen);
        cache.set_insert_listener(Arc::new(move |key, _outcome| {
            sink.lock().unwrap().push(key);
        }));
        let warm = RunKey::fast(StrategyKind::Clean, 2);
        cache.insert_ready(warm, dummy_outcome());
        assert!(seen.lock().unwrap().is_empty(), "warm loads must not fire");
        let computed = RunKey::fast(StrategyKind::Clean, 3);
        cache.get_or_run(computed);
        cache.get_or_run(computed); // hit: no second event
        assert_eq!(seen.lock().unwrap().as_slice(), [computed]);
    }

    #[test]
    fn entries_snapshot_returns_ready_entries() {
        let cache = RunCache::with_runner(|_| dummy_outcome());
        let a = RunKey::fast(StrategyKind::Clean, 2);
        let b = RunKey::audited(StrategyKind::Flood, 3);
        cache.get_or_run(a);
        cache.get_or_run(b);
        let mut keys: Vec<_> = cache
            .entries_snapshot()
            .into_iter()
            .map(|(k, _)| k.label())
            .collect();
        keys.sort();
        assert_eq!(keys, ["clean/d2/fast", "flood/d3/audited"]);
    }

    #[test]
    fn timings_record_every_unique_run() {
        let cache = RunCache::with_runner(|_| dummy_outcome());
        for d in 1..=4 {
            cache.get_or_run(RunKey::fast(StrategyKind::Cloning, d));
        }
        cache.get_or_run(RunKey::fast(StrategyKind::Cloning, 1));
        let timings = cache.timings();
        assert_eq!(timings.len(), 4);
        assert!(cache.total_run_time() >= timings[0].elapsed);
    }
}
