//! Measured-vs-predicted tables with text and CSV rendering.

use serde::{Deserialize, Serialize};

/// A rectangular table of strings (values are pre-formatted so exact
/// integers never suffer float rounding).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format helper: thousands-separated integers keep wide tables readable.
pub fn fmt_u64(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

/// Format helper for u128 predictions.
pub fn fmt_u128(v: u128) -> String {
    fmt_u64(u64::try_from(v).expect("prediction fits u64 at supported dimensions"))
}

/// Format a ratio with 3 decimals.
pub fn fmt_ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "-".into()
    } else {
        format!("{:.3}", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_aligns_columns() {
        let mut t = Table::new("demo", &["d", "value"]);
        t.push_row(vec!["4".into(), "12345".into()]);
        t.push_row(vec!["10".into(), "7".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "# demo");
        assert!(lines[1].contains("value"));
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_is_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["x"]);
        t.push_row(vec!["a,b".into()]);
        assert_eq!(t.to_csv(), "x\n\"a,b\"\n");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_u64(1234567), "1_234_567");
        assert_eq!(fmt_u64(12), "12");
        assert_eq!(fmt_u128(1000), "1_000");
        assert_eq!(fmt_ratio(1.0, 2.0), "0.500");
        assert_eq!(fmt_ratio(1.0, 0.0), "-");
    }
}
