//! One module per experiment family; ids match `DESIGN.md` §3.

pub mod compare;
pub mod dynamics;
pub mod figures;
pub mod theorems;

pub use compare::{
    e11_strategy_comparison, e12_baselines, e13_ablations, e14_open_problem, e16_network_survey,
};
pub use dynamics::e15_capture_dynamics;
pub use figures::{f1_broadcast_tree, f2_clean_order, f3_msb_classes, f4_visibility_wavefront};
pub use theorems::{
    t10_synchronous_variant, t2_clean_agents, t3_clean_moves, t4_clean_time, t5_visibility_agents,
    t6_monotonicity, t7_visibility_time, t8_visibility_moves, t9_cloning,
};

/// All experiment ids, in presentation order.
pub const ALL_IDS: &[&str] = &[
    "f1", "f2", "f3", "f4", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "e11", "e12",
    "e13", "e14", "e15", "e16",
];

/// The strategy runs `id` reads from the shared [`crate::cache::RunCache`]
/// under `cfg` — the declarations the runner's warm phase executes across
/// the worker pool. Unknown ids declare nothing.
pub fn required_runs(id: &str, cfg: &crate::runner::ExperimentConfig) -> Vec<crate::cache::RunKey> {
    let mut keys = figures::required_runs(id, cfg);
    keys.extend(theorems::required_runs(id, cfg));
    keys.extend(compare::required_runs(id, cfg));
    keys.extend(dynamics::required_runs(id, cfg));
    keys
}
