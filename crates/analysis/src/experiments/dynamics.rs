//! E15: capture dynamics — how the intruder's flight unfolds under
//! scheduling noise.
//!
//! The paper treats the intruder implicitly (worst case); our explicit
//! greedy evader lets us *measure* the chase: when in the run it is
//! cornered, and how many evasive hops it manages, as the asynchronous
//! adversary varies. The structural result (capture always happens, near
//! the very end of the run) is schedule-invariant; the distributions
//! quantify the noise.

use hypersweep_intruder::CaptureStatus;
use hypersweep_sim::Policy;

use crate::cache::{RunCache, RunKey, StrategyKind};
use crate::result::ExperimentResult;
use crate::runner::ExperimentConfig;
use crate::stats::summarize;
use crate::table::Table;

/// The chase dimension: the largest engine dimension, capped at 7.
fn chase_dim(cfg: &ExperimentConfig) -> u32 {
    cfg.engine_dims.iter().copied().max().unwrap_or(6).min(7)
}

/// The strategies whose chases E15 measures.
const CHASED: [(&str, StrategyKind); 3] = [
    ("clean", StrategyKind::Clean),
    ("visibility", StrategyKind::Visibility),
    ("cloning", StrategyKind::Cloning),
];

/// The random-adversary seeds E15 sweeps.
fn chase_seeds(cfg: &ExperimentConfig) -> Vec<u64> {
    (0..cfg.adversary_seeds.max(8) * 4).collect()
}

/// The strategy runs E15 reads from the cache.
pub fn required_runs(id: &str, cfg: &ExperimentConfig) -> Vec<RunKey> {
    if id != "e15" {
        return Vec::new();
    }
    let d = chase_dim(cfg);
    let mut keys = Vec::new();
    for (_, kind) in CHASED {
        for seed in chase_seeds(cfg) {
            keys.push(RunKey::engine(kind, d, Policy::Random(seed)));
        }
    }
    keys
}

/// Read one cached chase and return `(capture_event, total_events)`.
fn chase(runs: &RunCache, kind: StrategyKind, d: u32, seed: u64) -> (u64, u64) {
    let outcome = runs.get_or_run(RunKey::engine(kind, d, Policy::Random(seed)));
    assert!(outcome.is_complete());
    let events_total = outcome.verdict.events;
    let at_event = match outcome.verdict.capture.expect("tracked") {
        CaptureStatus::Captured { at_event, .. } => at_event,
        s => panic!("must be captured, got {s:?}"),
    };
    (at_event, events_total)
}

/// E15: capture-time and flight statistics across random adversaries.
pub fn e15_capture_dynamics(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e15",
        "capture dynamics: when and where the evader is cornered",
        "a monotone contiguous search corners the worst-case evader only in the final phase \
         of the run: the capture event lands in the last few percent of the trace for every \
         strategy and schedule",
    );
    let d = chase_dim(cfg);
    let seeds = chase_seeds(cfg);

    let mut table = Table::new(
        format!(
            "capture position across {} random schedules on H_{d}",
            seeds.len()
        ),
        &[
            "strategy",
            "capture event (mean ± std [min..max])",
            "trace length",
            "capture position (fraction of run)",
        ],
    );
    for (name, kind) in CHASED {
        let mut captures = Vec::new();
        let mut totals = Vec::new();
        let mut fractions = Vec::new();
        for &seed in &seeds {
            let (at, total) = chase(runs, kind, d, seed);
            captures.push(at as f64);
            totals.push(total as f64);
            fractions.push(at as f64 / total as f64);
        }
        let cap = summarize(&captures);
        let tot = summarize(&totals);
        let frac = summarize(&fractions);
        // Structural claim: capture never lands in the first half.
        assert!(
            frac.min > 0.5,
            "{name}: capture at fraction {} is implausibly early",
            frac.min
        );
        table.push_row(vec![
            name.into(),
            cap.cell(),
            tot.cell(),
            format!("{:.3} ± {:.3}", frac.mean, frac.std_dev),
        ]);
    }
    r.tables.push(table);
    r.notes.push(format!(
        "the evader starts at the far corner 1…1 of H_{d} and plays the greedy \
         maximum-distance policy; across every schedule it survives into the final phase \
         and is cornered in the last stretch of the run — the monotone frontier leaves it \
         no earlier escape"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_produces_one_row_per_strategy() {
        let mut cfg = ExperimentConfig::quick();
        cfg.adversary_seeds = 2;
        let r = e15_capture_dynamics(&cfg, &RunCache::new());
        assert_eq!(r.tables[0].rows.len(), 3);
    }
}
