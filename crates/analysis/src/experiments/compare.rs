//! E11–E12: comparative experiments (the trade-offs §1.3 motivates).

use hypersweep_baselines::tree_search::{chord_blind_trace, tree_search_number};
use hypersweep_baselines::{
    boundary_optimum, greedy_plan, isoperimetric_team_lower_bound, FrontierStrategy,
};
use hypersweep_intruder::{verify_trace, MonitorConfig};
use hypersweep_sim::Policy;
use hypersweep_topology::graph::{AdjGraph, CubeConnectedCycles, DeBruijn, Ring, Torus};
use hypersweep_topology::{combinatorics as comb, BroadcastTree, Hypercube, Node, Topology};

use crate::cache::{RunCache, RunKey, StrategyKind};
use crate::result::ExperimentResult;
use crate::runner::ExperimentConfig;
use crate::series::Series;
use crate::table::{fmt_u128, fmt_u64, Table};

/// The strategy runs each comparative experiment reads from the cache.
pub fn required_runs(id: &str, cfg: &ExperimentConfig) -> Vec<RunKey> {
    let mut keys = Vec::new();
    match id {
        "e11" => {
            for &d in &cfg.fast_dims {
                for kind in [
                    StrategyKind::Clean,
                    StrategyKind::Visibility,
                    StrategyKind::Cloning,
                    StrategyKind::Flood,
                    StrategyKind::Frontier,
                ] {
                    keys.push(RunKey::fast(kind, d));
                }
            }
        }
        "e13" => {
            for &d in &cfg.fast_dims {
                keys.push(RunKey::fast(StrategyKind::Clean, d));
                keys.push(RunKey::fast(StrategyKind::CleanThroughRoot, d));
            }
            for &d in cfg
                .sync_engine_dims
                .iter()
                .filter(|&&d| d <= cfg.sync_ablation_max_dim)
            {
                keys.push(RunKey::engine(
                    StrategyKind::Cloning,
                    d,
                    Policy::Synchronous,
                ));
                keys.push(RunKey::engine(
                    StrategyKind::CloningSmallestFirst,
                    d,
                    Policy::Synchronous,
                ));
            }
        }
        _ => {}
    }
    keys
}

/// E11: the agents/moves/time trade-off across all strategies.
pub fn e11_strategy_comparison(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e11",
        "strategy trade-offs: agents vs moves vs time",
        "CLEAN minimizes agents at the cost of sequential O(n log n) time; visibility is \
         exponentially faster (log n) but uses n/2 agents; cloning additionally minimizes \
         moves to n − 1",
    );
    let mut table = Table::new(
        "agents / moves / ideal time per strategy and dimension",
        &["d", "strategy", "agents", "moves", "ideal time"],
    );
    let mut agents_clean = Series::new("agents: clean");
    let mut agents_vis = Series::new("agents: visibility");
    let mut moves_clean = Series::new("moves: clean");
    let mut moves_cloning = Series::new("moves: cloning");

    for &d in &cfg.fast_dims {
        let clean = runs
            .get_or_run(RunKey::fast(StrategyKind::Clean, d))
            .metrics;
        let vis = runs
            .get_or_run(RunKey::fast(StrategyKind::Visibility, d))
            .metrics;
        let cloning = runs
            .get_or_run(RunKey::fast(StrategyKind::Cloning, d))
            .metrics;
        let flood = runs
            .get_or_run(RunKey::fast(StrategyKind::Flood, d))
            .metrics;
        let frontier = runs
            .get_or_run(RunKey::fast(StrategyKind::Frontier, d))
            .metrics;
        // Ideal time: wave strategies report it directly; CLEAN's is its
        // sequential walk (Theorem 4) — listed as the synchronizer moves.
        let rows: Vec<(&str, u64, u64, String)> = vec![
            (
                "clean",
                clean.team_size,
                clean.total_moves(),
                format!("~{} (sync walk)", fmt_u64(clean.coordinator_moves)),
            ),
            (
                "visibility",
                vis.team_size,
                vis.total_moves(),
                d.to_string(),
            ),
            (
                "cloning",
                cloning.team_size,
                cloning.total_moves(),
                d.to_string(),
            ),
            ("flood", flood.team_size, flood.total_moves(), d.to_string()),
            (
                "frontier",
                frontier.team_size,
                frontier.total_moves(),
                "sequential".into(),
            ),
        ];
        for (name, agents, moves, time) in rows {
            table.push_row(vec![
                d.to_string(),
                name.into(),
                fmt_u64(agents),
                fmt_u64(moves),
                time,
            ]);
        }
        agents_clean.push(u64::from(d), clean.team_size as f64);
        agents_vis.push(u64::from(d), vis.team_size as f64);
        moves_clean.push(u64::from(d), clean.total_moves() as f64);
        moves_cloning.push(u64::from(d), cloning.total_moves() as f64);

        // The ordering claims, checked programmatically for every d ≥ 4
        // (CLEAN's team equals n/2 at d = 4 and drops strictly below from
        // d = 5 on).
        if d >= 4 {
            if d >= 5 {
                assert!(
                    clean.team_size < vis.team_size,
                    "d={d}: CLEAN uses fewer agents"
                );
            } else {
                assert!(clean.team_size <= vis.team_size, "d={d}");
            }
            assert!(vis.team_size < flood.team_size, "d={d}");
            assert!(
                cloning.total_moves() < vis.total_moves(),
                "d={d}: cloning minimizes moves"
            );
            assert!(
                vis.total_moves() < clean.total_moves(),
                "d={d}: one-way leaf journeys beat round trips"
            );
            assert!(
                clean.team_size < frontier.team_size,
                "d={d}: leaf recall beats the naive double frontier"
            );
        }
    }
    r.tables.push(table);
    r.series
        .extend([agents_clean, agents_vis, moves_clean, moves_cloning]);
    r.notes.push(
        "who wins: agents — clean < visibility = cloning < frontier < flood; \
         moves — cloning (n−1) < visibility ((n/4)(log n+1)) < clean ((n/2)(log n+1) + sync) \
         < frontier (~n log n); time — visibility = cloning = flood (log n) ≪ clean = \
         frontier (Θ(n log n) sequential)"
            .into(),
    );
    r
}

/// E12: the paper's strategies against the baselines and exact bounds.
pub fn e12_baselines(cfg: &ExperimentConfig, _runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e12",
        "baselines: what the hypercube-specific strategies buy",
        "the tree-optimal strategy is useless on the hypercube (chords recontaminate); the \
         naive frontier sweep needs ~1.6× CLEAN's team; for small d CLEAN is within one agent \
         of the exact guards-only optimum",
    );

    // (a) Team ratios.
    let mut table = Table::new(
        "team sizes: CLEAN vs frontier vs n/2 strategies",
        &[
            "d",
            "clean",
            "frontier",
            "frontier/clean",
            "n/2",
            "flood (n)",
        ],
    );
    for &d in &cfg.fast_dims {
        let clean = comb::clean_team_size(d);
        let frontier = FrontierStrategy::new(Hypercube::new(d)).team_size();
        table.push_row(vec![
            d.to_string(),
            fmt_u128(clean),
            fmt_u64(frontier),
            format!("{:.3}", frontier as f64 / clean as f64),
            fmt_u128(comb::visibility_agents(d)),
            fmt_u128(comb::pow2(d)),
        ]);
    }
    r.tables.push(table);

    // (b) The chord-blind negative control.
    let mut blind = Table::new(
        "tree-optimal plan replayed on the hypercube (negative control)",
        &["d", "tree team (B_d)", "recontaminations on H_d", "verdict"],
    );
    for &d in cfg.engine_dims.iter().filter(|&&d| (3..=7).contains(&d)) {
        let cube = Hypercube::new(d);
        let tree = BroadcastTree::new(cube);
        let mut g = AdjGraph::with_nodes(cube.node_count());
        for x in cube.nodes() {
            for c in tree.children(x) {
                g.add_edge(x, c);
            }
        }
        let team = tree_search_number(&g, Node::ROOT);
        let trace = chord_blind_trace(cube);
        let verdict = verify_trace(
            &cube,
            Node::ROOT,
            &trace,
            MonitorConfig::monotonicity_only(),
        );
        blind.push_row(vec![
            d.to_string(),
            team.to_string(),
            verdict.violations.len().to_string(),
            if verdict.monotone {
                "unexpectedly clean".into()
            } else {
                "recontaminated (as expected)".into()
            },
        ]);
        assert!(!verdict.monotone, "d={d}: the control must fail");
    }
    r.tables.push(blind);

    // (c) Exact guards-only optimum for small d.
    let mut optimum = Table::new(
        "exact boundary optimum vs CLEAN's team (the §5 open problem, small d)",
        &["d", "boundary optimum", "clean team", "gap"],
    );
    for d in 1..=4u32 {
        let opt = boundary_optimum(&Hypercube::new(d), Node::ROOT).peak_boundary;
        let clean = comb::clean_team_size(d);
        optimum.push_row(vec![
            d.to_string(),
            opt.to_string(),
            fmt_u128(clean),
            (clean as i128 - i128::from(opt)).to_string(),
        ]);
    }
    r.tables.push(optimum);
    r.notes.push(
        "for d ≤ 4 Algorithm CLEAN is within one agent of the exact guards-only optimum \
         (team 8 vs optimum 7 at d = 4) — consistent with, though not settling, the paper's \
         open optimality question"
            .into(),
    );
    r.notes.push(
        "the broadcast tree B_d alone needs only ⌊d/2⌋+1 agents as a *tree*, but its plan \
         recontaminates the hypercube instantly: the chords are what make the problem hard"
            .into(),
    );
    r
}

/// E13: ablations of the paper's two key design choices.
pub fn e13_ablations(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e13",
        "ablations: via-meet navigation and largest-subtree-first dispatch",
        "Theorem 3's via-meet navigation and §5's dispatch order are load-bearing: replacing \
         either with the naive alternative stays correct but measurably loses the claimed \
         complexity",
    );
    // (a) Synchronizer navigation: via meet vs through the root.
    let mut nav = Table::new(
        "CLEAN synchronizer moves: via-meet vs through-root navigation",
        &["d", "via-meet", "through-root", "ratio"],
    );
    for &d in &cfg.fast_dims {
        let meet = runs
            .get_or_run(RunKey::fast(StrategyKind::Clean, d))
            .metrics
            .coordinator_moves;
        let naive = runs
            .get_or_run(RunKey::fast(StrategyKind::CleanThroughRoot, d))
            .metrics
            .coordinator_moves;
        nav.push_row(vec![
            d.to_string(),
            fmt_u64(meet),
            fmt_u64(naive),
            format!("{:.2}", naive as f64 / meet.max(1) as f64),
        ]);
    }
    r.tables.push(nav);
    // (b) Cloning dispatch order: g(d) = d vs g'(d) = d(d+1)/2, exactly.
    let mut disp = Table::new(
        "cloning ideal time: largest-subtree-first vs smallest-subtree-first",
        &["d", "largest first", "smallest first", "d(d+1)/2"],
    );
    for &d in cfg
        .sync_engine_dims
        .iter()
        .filter(|&&d| d <= cfg.sync_ablation_max_dim)
    {
        let a = runs.get_or_run(RunKey::engine(
            StrategyKind::Cloning,
            d,
            Policy::Synchronous,
        ));
        let b = runs.get_or_run(RunKey::engine(
            StrategyKind::CloningSmallestFirst,
            d,
            Policy::Synchronous,
        ));
        assert!(b.is_complete());
        let tri = u64::from(d) * (u64::from(d) + 1) / 2;
        assert_eq!(b.metrics.ideal_time, Some(tri));
        disp.push_row(vec![
            d.to_string(),
            a.metrics.ideal_time.unwrap().to_string(),
            b.metrics.ideal_time.unwrap().to_string(),
            tri.to_string(),
        ]);
    }
    r.tables.push(disp);
    r.notes.push(
        "both ablations remain correct searches (audited); they lose exactly the complexity \
         the paper's analysis attributes to the corresponding design choice — the dispatch \
         ablation measures d(d+1)/2 rounds on the nose"
            .into(),
    );
    r
}

/// E14: the open problem (§5) — squeezing the optimal team size.
pub fn e14_open_problem(cfg: &ExperimentConfig, _runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e14",
        "the §5 open problem: how optimal is Algorithm CLEAN's team?",
        "the paper asks whether CLEAN's team is optimal (conjecturing an Ω(n/log n) lower \
         bound); sandwiching it between an isoperimetric lower bound and a generic greedy \
         upper bound shows it is near-optimal but beatable at small d, with both sides \
         growing as Θ(n/√log n)",
    );
    let mut table = Table::new(
        "team-size bounds per dimension",
        &[
            "d",
            "isoperimetric LB",
            "exact optimum (d<=4)",
            "greedy team (UB)",
            "CLEAN team",
            "greedy/CLEAN",
        ],
    );
    let greedy_max = cfg.fast_max_dim().min(cfg.greedy_planner_max_dim);
    for &d in cfg.fast_dims.iter().filter(|&&d| d <= greedy_max) {
        let cube = Hypercube::new(d);
        let lb = isoperimetric_team_lower_bound(d);
        let exact = if d <= 4 {
            boundary_optimum(&cube, Node::ROOT)
                .peak_boundary
                .to_string()
        } else {
            "-".into()
        };
        let plan = greedy_plan(&cube, Node::ROOT);
        let clean = comb::clean_team_size(d);
        table.push_row(vec![
            d.to_string(),
            lb.to_string(),
            exact,
            plan.team.to_string(),
            fmt_u128(clean),
            format!("{:.3}", f64::from(plan.team) / clean as f64),
        ]);
        assert!(u128::from(lb) <= clean);
        // The greedy plan is a real strategy, so it upper-bounds the
        // optimum; record the small-d improvement over CLEAN.
        if (5..=7).contains(&d) {
            assert!(
                u128::from(plan.team) < clean,
                "d={d}: greedy no longer beats CLEAN — regenerate the notes"
            );
        }
    }
    r.tables.push(table);
    r.notes.push(
        "for d = 5..7 the generic bottleneck-greedy strategy uses FEWER agents than Algorithm \
         CLEAN (13 vs 15 at d = 5, 25 vs 26 at d = 6, 49 vs 51 at d = 7), so CLEAN's team is \
         not optimal at small dimensions; from d = 8 the tailored level structure wins \
         (92 vs 97, and the gap widens)"
            .into(),
    );
    r.notes.push(
        "both the isoperimetric lower bound and every upper bound grow as Θ(n/√log n) — \
         further evidence that the paper's conjectured Ω(n/log n) optimum is below the truth \
         (see note N1 in EXPERIMENTS.md)"
            .into(),
    );
    r
}

/// E16: contiguous search across classic interconnection networks.
pub fn e16_network_survey(_cfg: &ExperimentConfig, _runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "e16",
        "contiguous search numbers of classic networks (generic planner)",
        "the model, monitors and generic planner are topology-agnostic: boundaries — hence \
         teams — follow each network's vertex expansion (constant for rings, ~side for tori, \
         Θ(n/√log n) for hypercubes, small for constant-degree networks)",
    );
    let mut table = Table::new(
        "greedy contiguous search across topologies (all audited)",
        &[
            "network",
            "nodes",
            "edges",
            "team",
            "peak boundary",
            "moves",
        ],
    );
    let mut add = |name: &str, topo: &dyn Topology| {
        let plan = greedy_plan(topo, Node(0));
        let far = Node(topo.node_count() as u32 - 1);
        let verdict = hypersweep_intruder::verify_trace(
            topo,
            Node(0),
            &plan.events,
            hypersweep_intruder::MonitorConfig::with_intruder(far),
        );
        assert!(verdict.is_complete(), "{name}: {:?}", verdict.violations);
        table.push_row(vec![
            name.into(),
            topo.node_count().to_string(),
            topo.edge_count().to_string(),
            plan.team.to_string(),
            plan.peak_boundary.to_string(),
            plan.moves.to_string(),
        ]);
        (plan.team, topo.node_count())
    };
    let (ring_team, _) = add("ring(64)", &Ring::new(64));
    add("torus(8x8)", &Torus::new(8, 8));
    add("torus(4x16)", &Torus::new(4, 16));
    add("torus(16x4)", &Torus::new(16, 4));
    add("de Bruijn DB(2,8)", &DeBruijn::new(8));
    add("CCC(5)", &CubeConnectedCycles::new(5));
    add("hypercube H_6", &Hypercube::new(6));
    add("hypercube H_8", &Hypercube::new(8));
    assert_eq!(ring_team, 2, "rings need exactly two agents");
    r.tables.push(table);
    r.notes.push(
        "torus teams follow the side the sweep crosses: 16x4 needs 8 agents, 4x16 needs 19 \
         with the same node count, because the planner's id-order tie-break sweeps along the \
         column axis — a tailored strategy would always pick the cheap orientation (~2x the \
         short side). The constant-degree de Bruijn/CCC networks are dramatically cheaper \
         to search than the hypercube: contiguous search cost is a vertex-expansion \
         phenomenon, which is exactly why the hypercube is the interesting hard case the \
         paper tackles"
            .into(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_survey_is_audited_and_ordered() {
        let r = e16_network_survey(&ExperimentConfig::quick(), &RunCache::new());
        let team_of = |name: &str| -> u32 {
            r.tables[0].rows.iter().find(|row| row[0] == name).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert_eq!(team_of("ring(64)"), 2);
        // Greedy's id-order tie-break sweeps along the column axis, so the
        // short side must be the column count to get the cheap sweep.
        assert!(team_of("torus(16x4)") <= team_of("torus(8x8)"));
        assert!(team_of("torus(4x16)") >= team_of("torus(16x4)"));
        assert!(team_of("de Bruijn DB(2,8)") < team_of("hypercube H_8"));
    }

    #[test]
    fn e14_bounds_are_consistent() {
        let r = e14_open_problem(&ExperimentConfig::quick(), &RunCache::new());
        assert!(!r.tables[0].rows.is_empty());
        for row in &r.tables[0].rows {
            let lb: u64 = row[1].parse().unwrap();
            let clean: u64 = row[4].replace('_', "").parse().unwrap();
            assert!(lb <= clean);
        }
    }

    #[test]
    fn e13_ablation_shapes() {
        let r = e13_ablations(&ExperimentConfig::quick(), &RunCache::new());
        assert_eq!(r.tables.len(), 2);
        // Navigation ratio strictly above 1 for the largest dim row.
        let last = r.tables[0].rows.last().unwrap();
        assert!(last[3].parse::<f64>().unwrap() > 1.0);
    }

    #[test]
    fn e11_orderings_hold() {
        let r = e11_strategy_comparison(&ExperimentConfig::quick(), &RunCache::new());
        assert_eq!(r.series.len(), 4);
        assert!(!r.tables[0].rows.is_empty());
    }

    #[test]
    fn e12_controls_behave() {
        let r = e12_baselines(&ExperimentConfig::quick(), &RunCache::new());
        assert_eq!(r.tables.len(), 3);
        // The negative-control rows all report recontamination.
        for row in &r.tables[1].rows {
            assert!(row[3].contains("as expected"));
        }
    }
}
