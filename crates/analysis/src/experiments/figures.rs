//! F1–F4: the paper's structural figures, regenerated.

use hypersweep_core::{CleanStrategy, SearchStrategy, VisibilityStrategy};
use hypersweep_sim::EventKind;
use hypersweep_topology::{
    combinatorics as comb, render, BroadcastTree, HeapQueue, Hypercube, Node,
};

use crate::cache::{RunCache, RunKey};
use crate::result::ExperimentResult;
use crate::runner::ExperimentConfig;
use crate::series::Series;
use crate::table::Table;

/// The figure experiments keep no cached runs: F1/F3 are structural and
/// F2/F4 need raw event traces (`synthesize`), which the cache does not
/// store.
pub fn required_runs(_id: &str, _cfg: &ExperimentConfig) -> Vec<RunKey> {
    Vec::new()
}

/// F1 (Figure 1): the broadcast tree of `H_d` is the heap queue `T(d)`.
pub fn f1_broadcast_tree(cfg: &ExperimentConfig, _runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "f1",
        "broadcast tree T(d) of H_d (Figure 1)",
        "the broadcast spanning tree of a hypercube of size n is a heap queue T(log n), \
         with Property 1's type census per level",
    );
    // Structural isomorphism for every fast dimension.
    let mut iso_ok = true;
    for d in 0..=cfg.fast_max_dim().min(cfg.heap_iso_max_dim) {
        let tree = BroadcastTree::new(Hypercube::new(d));
        let hq = HeapQueue::build(d);
        iso_ok &= hq.matches_broadcast_subtree(&tree, Node::ROOT);
    }
    r.notes.push(format!(
        "heap-queue isomorphism verified for d = 0..={}: {}",
        cfg.fast_max_dim().min(cfg.heap_iso_max_dim),
        if iso_ok { "OK" } else { "FAILED" }
    ));
    // The figure itself (the paper draws d = 6).
    let d = cfg.figure_dim;
    r.artifacts
        .push(render::render_broadcast_tree(Hypercube::new(d)));
    r.artifacts
        .push(render::render_type_census(Hypercube::new(d)));
    // Property 1 table: measured census vs C(d−k−1, l−1).
    let cube = Hypercube::new(d);
    let tree = BroadcastTree::new(cube);
    let mut table = Table::new(
        format!("type census of the broadcast tree of H_{d} vs Property 1"),
        &["level", "type", "measured", "predicted"],
    );
    let mut census = vec![vec![0u64; d as usize + 1]; d as usize + 1];
    for x in cube.nodes() {
        census[x.level() as usize][tree.node_type(x) as usize] += 1;
    }
    for l in 0..=d {
        for k in 0..=d {
            let predicted = comb::type_count_at_level(d, l, k);
            let measured = census[l as usize][k as usize];
            if predicted > 0 || measured > 0 {
                table.push_row(vec![
                    l.to_string(),
                    format!("T({k})"),
                    measured.to_string(),
                    predicted.to_string(),
                ]);
            }
        }
    }
    r.tables.push(table);
    // Series: leaves per level (Property 2's shape).
    let mut s = Series::new(format!("leaves of T({d}) per level"));
    for l in 0..=d {
        s.push(u64::from(l), comb::leaves_at_level(d, l) as f64);
    }
    r.series.push(s);
    r
}

/// First-visit order of nodes from a trace.
fn first_visit_order(events: &[hypersweep_sim::Event]) -> Vec<(u64, Node)> {
    let mut seen = std::collections::HashSet::new();
    let mut order = Vec::new();
    for e in events {
        let node = match e.kind {
            EventKind::Spawn { node, .. } => node,
            EventKind::Move { to, .. } => to,
            EventKind::CloneSpawn { to, .. } => to,
            EventKind::Terminate { .. } => continue,
        };
        if seen.insert(node) {
            order.push((e.time, node));
        }
    }
    order
}

/// F2 (Figure 2): the order in which Algorithm CLEAN cleans `H_4`.
pub fn f2_clean_order(cfg: &ExperimentConfig, _runs: &RunCache) -> ExperimentResult {
    let d = cfg.small_figure_dim;
    let mut r = ExperimentResult::new(
        "f2",
        format!("cleaning order of Algorithm CLEAN on H_{d} (Figure 2)"),
        "the synchronizer sweeps each level in lexicographic order; nodes are first visited \
         level by level",
    );
    let strategy = CleanStrategy::new(Hypercube::new(d));
    let outcome = strategy.fast(true);
    assert!(outcome.is_complete(), "CLEAN must complete for the figure");
    let (_, events) = strategy.synthesize(true);
    let order = first_visit_order(&events.expect("events recorded"));
    let mut artifact = format!("first-visit order of H_{d} under CLEAN:\n");
    for (rank, (_, node)) in order.iter().enumerate() {
        artifact.push_str(&format!(
            "{:>3}. {}  (level {})\n",
            rank,
            node.bitstring(d),
            node.level()
        ));
    }
    r.artifacts.push(artifact);
    // Check the figure's invariant: visit ranks are sorted by level.
    let levels: Vec<u32> = order.iter().map(|(_, n)| n.level()).collect();
    let monotone_levels = levels.windows(2).all(|w| w[1] >= w[0]);
    r.notes.push(format!(
        "nodes are first visited in non-decreasing level order: {}",
        if monotone_levels { "OK" } else { "VIOLATED" }
    ));
    r
}

/// F3 (Figure 3): the msb classes `C_0 … C_d`.
pub fn f3_msb_classes(cfg: &ExperimentConfig, _runs: &RunCache) -> ExperimentResult {
    let d = cfg.figure_dim;
    let mut r = ExperimentResult::new(
        "f3",
        format!("msb classes C_i of H_{d} (Figure 3)"),
        "|C_0| = 1 and |C_i| = 2^(i-1) (Property 5); all broadcast-tree leaves lie in C_d \
         (Property 6)",
    );
    r.artifacts
        .push(render::render_msb_classes(Hypercube::new(d)));
    let cube = Hypercube::new(d);
    let tree = BroadcastTree::new(cube);
    let mut table = Table::new(
        format!("msb class sizes of H_{d}"),
        &["i", "measured |C_i|", "predicted", "leaves in C_i"],
    );
    for i in 0..=d {
        let members = tree.msb_class_nodes(i);
        let leaves = members.iter().filter(|x| tree.is_leaf(**x)).count();
        table.push_row(vec![
            i.to_string(),
            members.len().to_string(),
            comb::msb_class_size(i).to_string(),
            leaves.to_string(),
        ]);
    }
    r.tables.push(table);
    let mut s = Series::new(format!("|C_i| in H_{d}"));
    for i in 0..=d {
        s.push(u64::from(i), comb::msb_class_size(i) as f64);
    }
    r.series.push(s);
    r
}

/// F4 (Figure 4): the visibility strategy's wavefront cleaning order.
pub fn f4_visibility_wavefront(cfg: &ExperimentConfig, _runs: &RunCache) -> ExperimentResult {
    let d = cfg.small_figure_dim;
    let mut r = ExperimentResult::new(
        "f4",
        format!("wavefront order of CLEAN WITH VISIBILITY on H_{d} (Figure 4)"),
        "nodes are cleaned in parallel waves: exactly the class C_i is reached at time i \
         (Theorem 7's wavefront)",
    );
    let strategy = VisibilityStrategy::new(Hypercube::new(d));
    let (_, events) = strategy.synthesize(true);
    let events = events.expect("events recorded");
    let tree = BroadcastTree::new(Hypercube::new(d));
    // A node becomes *clean* when its agents depart (its dispatch round);
    // the leaves C_d become clean at the final time d, when the whole top
    // class is guarded. Our rounds are the paper's times shifted by one.
    let mut vacated: std::collections::BTreeMap<Node, u64> = Default::default();
    for e in &events {
        if let EventKind::Move { from, .. } = e.kind {
            let t = vacated.entry(from).or_insert(e.time);
            *t = (*t).max(e.time);
        }
    }
    let mut by_time: std::collections::BTreeMap<u64, Vec<Node>> = Default::default();
    for (n, round) in &vacated {
        by_time.entry(round - 1).or_default().push(*n);
    }
    by_time
        .entry(u64::from(d))
        .or_default()
        .extend(tree.leaves());
    let mut artifact = format!("cleaning wavefronts of H_{d} under CLEAN WITH VISIBILITY:\n");
    let mut wave_ok = true;
    for (t, nodes) in &by_time {
        let labels: Vec<String> = nodes.iter().map(|n| n.bitstring(d)).collect();
        artifact.push_str(&format!("t = {t}: {}\n", labels.join(" ")));
        for n in nodes {
            // Theorem 7: the wave cleaned at time t is exactly class C_t.
            wave_ok &= u64::from(tree.msb_class(*n)) == *t;
        }
    }
    r.artifacts.push(artifact);
    r.notes.push(format!(
        "the wave cleaned at time t is exactly class C_t (leaves settle at t = d): {}",
        if wave_ok { "OK" } else { "VIOLATED" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::quick()
    }

    #[test]
    fn f1_verifies_isomorphism_and_census() {
        let r = f1_broadcast_tree(&cfg(), &RunCache::new());
        assert!(r.notes[0].contains("OK"));
        assert!(!r.tables[0].rows.is_empty());
        assert_eq!(r.artifacts.len(), 2);
    }

    #[test]
    fn f2_visits_levels_in_order() {
        let r = f2_clean_order(&cfg(), &RunCache::new());
        assert!(r.notes[0].contains("OK"), "{:?}", r.notes);
        // H_4: 16 visit lines + header.
        assert_eq!(r.artifacts[0].lines().count(), 17);
    }

    #[test]
    fn f3_class_sizes_match() {
        let r = f3_msb_classes(&cfg(), &RunCache::new());
        for row in &r.tables[0].rows {
            assert_eq!(row[1], row[2], "measured vs predicted |C_i|");
        }
    }

    #[test]
    fn f4_wavefront_is_exactly_the_classes() {
        let r = f4_visibility_wavefront(&cfg(), &RunCache::new());
        assert!(r.notes[0].contains("OK"), "{:?}", r.notes);
    }
}
