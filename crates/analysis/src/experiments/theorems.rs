//! T2–T10: the paper's theorems as measured-vs-predicted experiments.
//!
//! Every strategy execution goes through the shared [`RunCache`], so runs
//! duplicated across experiments (CLEAN's fast trace in T2/T3, the FIFO
//! engine confirmations, the visibility fast trace in T5/T7/T8, …) execute
//! once per harness invocation. [`required_runs`] declares each
//! experiment's runs so the runner can warm them across the worker pool.

use hypersweep_core::predictions::{
    clean_phase_accounting, clean_prediction, cloning_prediction, visibility_prediction,
};
use hypersweep_sim::Policy;
use hypersweep_topology::combinatorics as comb;

use crate::cache::{RunCache, RunKey, StrategyKind};
use crate::result::ExperimentResult;
use crate::runner::ExperimentConfig;
use crate::series::Series;
use crate::table::{fmt_ratio, fmt_u128, fmt_u64, Table};

/// The strategy runs each theorem experiment reads from the cache.
pub fn required_runs(id: &str, cfg: &ExperimentConfig) -> Vec<RunKey> {
    let mut keys = Vec::new();
    match id {
        "t2" | "t3" => {
            for &d in &cfg.fast_dims {
                keys.push(RunKey::fast(StrategyKind::Clean, d));
            }
            for &d in &cfg.engine_dims {
                keys.push(RunKey::engine(StrategyKind::Clean, d, Policy::Fifo));
            }
        }
        "t4" => {
            for &d in &cfg.sync_engine_dims {
                keys.push(RunKey::engine(StrategyKind::Clean, d, Policy::Synchronous));
            }
        }
        "t5" => {
            for &d in &cfg.fast_dims {
                keys.push(RunKey::fast(StrategyKind::Visibility, d));
            }
            for &d in &cfg.engine_dims {
                keys.push(RunKey::engine(StrategyKind::Visibility, d, Policy::Fifo));
            }
        }
        "t6" => {
            for kind in [
                StrategyKind::Clean,
                StrategyKind::Visibility,
                StrategyKind::Cloning,
            ] {
                for policy in Policy::adversaries(cfg.adversary_seeds) {
                    for &d in &cfg.engine_dims {
                        keys.push(RunKey::engine(kind, d, policy));
                    }
                }
            }
            for &d in &cfg.engine_dims {
                keys.push(RunKey::engine(StrategyKind::Clean, d, Policy::Random(1)));
                keys.push(RunKey::engine(
                    StrategyKind::Visibility,
                    d,
                    Policy::Random(1),
                ));
            }
        }
        "t7" => {
            for &d in &cfg.fast_dims {
                keys.push(RunKey::fast(StrategyKind::Visibility, d));
            }
            for &d in &cfg.sync_engine_dims {
                keys.push(RunKey::engine(
                    StrategyKind::Visibility,
                    d,
                    Policy::Synchronous,
                ));
            }
        }
        "t8" => {
            for &d in &cfg.fast_dims {
                keys.push(RunKey::fast(StrategyKind::Visibility, d));
            }
        }
        "t9" => {
            for &d in &cfg.fast_dims {
                keys.push(RunKey::fast(StrategyKind::Cloning, d));
            }
            for &d in &cfg.engine_dims {
                keys.push(RunKey::engine(StrategyKind::Cloning, d, Policy::Lifo));
            }
        }
        "t10" => {
            for &d in &cfg.sync_engine_dims {
                keys.push(RunKey::engine(
                    StrategyKind::Synchronous,
                    d,
                    Policy::Synchronous,
                ));
                keys.push(RunKey::engine(
                    StrategyKind::Visibility,
                    d,
                    Policy::Synchronous,
                ));
            }
        }
        _ => {}
    }
    keys
}

/// T2 (Theorem 2 + Lemmas 3, 4): agents used by Algorithm CLEAN.
pub fn t2_clean_agents(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t2",
        "team size of Algorithm CLEAN (Theorem 2, Lemmas 3–4)",
        "CLEAN employs 1 + max_l [C(d,l+1) + C(d−1,l−1)] agents, stated as O(n/log n)",
    );
    let mut table = Table::new(
        "CLEAN team size vs dimension",
        &[
            "d",
            "n",
            "team (measured)",
            "Lemma 4 prediction",
            "peak away (trace)",
            "n/log n",
            "n/sqrt(log n)",
            "team/(n/log n)",
            "team/(n/sqrt(log n))",
        ],
    );
    let mut team_series = Series::new("CLEAN team size");
    for &d in &cfg.fast_dims {
        let outcome = runs.get_or_run(RunKey::fast(StrategyKind::Clean, d));
        let p = clean_prediction(d);
        let n = comb::pow2(d) as f64;
        let nlogn = if d > 0 { n / d as f64 } else { n };
        let nsqrt = n / (d as f64).sqrt().max(1.0);
        table.push_row(vec![
            d.to_string(),
            fmt_u128(comb::pow2(d)),
            fmt_u64(outcome.metrics.team_size),
            fmt_u128(p.team),
            fmt_u64(outcome.metrics.peak_away),
            format!("{nlogn:.1}"),
            format!("{nsqrt:.1}"),
            fmt_ratio(outcome.metrics.team_size as f64, nlogn),
            fmt_ratio(outcome.metrics.team_size as f64, nsqrt),
        ]);
        team_series.push(u64::from(d), outcome.metrics.team_size as f64);
        assert_eq!(u128::from(outcome.metrics.team_size), p.team);
    }
    r.tables.push(table);
    r.series.push(team_series);

    // Per-phase accounting for the figure dimension (Lemma 3 exactly).
    let d = cfg.figure_dim;
    let mut phases = Table::new(
        format!("per-phase agent accounting for H_{d} (Lemma 3)"),
        &[
            "level l",
            "guards C(d,l)",
            "extras (Lemma 3)",
            "workers engaged",
        ],
    );
    for l in 0..d {
        let (g, e, w) = clean_phase_accounting(d, l);
        phases.push_row(vec![l.to_string(), fmt_u128(g), fmt_u128(e), fmt_u128(w)]);
    }
    r.tables.push(phases);

    // Engine confirmation: CLEAN completes with exactly the Lemma 4 team.
    for &d in &cfg.engine_dims {
        let outcome = runs.get_or_run(RunKey::engine(StrategyKind::Clean, d, Policy::Fifo));
        assert!(outcome.is_complete());
    }
    r.notes.push(format!(
        "engine runs with exactly the Lemma 4 team complete for d in {:?}",
        cfg.engine_dims
    ));
    r.notes.push(
        "reproduction note: the measured team matches the paper's exact formula for every d, \
         but its stated asymptotic O(n/log n) is optimistic — the central binomial term grows \
         as n/sqrt(log n), and the measured ratios confirm it (team/(n/sqrt(log n)) converges, \
         team/(n/log n) diverges)"
            .into(),
    );
    // Empirical order check.
    let fit_sqrt = r.series[0]
        .fit_against(|d| comb::pow2(d as u32) as f64 / (d as f64).sqrt())
        .expect("enough dims");
    r.notes.push(format!(
        "fit team ≈ c·n/sqrt(log n): c = {:.3}, max tail deviation {:.1}%",
        fit_sqrt.constant,
        fit_sqrt.max_rel_dev * 100.0
    ));
    r
}

/// T3 (Theorem 3): moves of Algorithm CLEAN.
pub fn t3_clean_moves(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t3",
        "moves of Algorithm CLEAN (Theorem 3)",
        "agents move Σ 2l·C(d−1,l−1) = (n/2)(log n + 1) times; the synchronizer adds \
         O(n log n) (escorts 2(n−1), navigation, trips); total O(n log n)",
    );
    let mut table = Table::new(
        "CLEAN move counts vs dimension",
        &[
            "d",
            "worker moves",
            "predicted (n/2)(log n+1)",
            "sync moves",
            "sync escorts 2(n-1)",
            "sync upper bound",
            "total",
            "total/(n log n)",
        ],
    );
    let mut total_series = Series::new("CLEAN total moves");
    for &d in &cfg.fast_dims {
        let m = runs
            .get_or_run(RunKey::fast(StrategyKind::Clean, d))
            .metrics;
        let p = clean_prediction(d);
        assert_eq!(
            u128::from(m.worker_moves),
            p.worker_moves,
            "Theorem 3 d={d}"
        );
        assert!(u128::from(m.coordinator_moves) <= p.sync_moves_upper);
        let nlogn = (comb::pow2(d) * d.max(1) as u128) as f64;
        table.push_row(vec![
            d.to_string(),
            fmt_u64(m.worker_moves),
            fmt_u128(p.worker_moves),
            fmt_u64(m.coordinator_moves),
            fmt_u128(p.sync_escort_moves),
            fmt_u128(p.sync_moves_upper),
            fmt_u64(m.total_moves()),
            fmt_ratio(m.total_moves() as f64, nlogn),
        ]);
        total_series.push(u64::from(d), m.total_moves() as f64);
    }
    r.tables.push(table);
    let fit = total_series
        .fit_against(|d| (comb::pow2(d as u32) * u128::from(d)) as f64)
        .expect("enough dims");
    r.notes.push(format!(
        "total moves ≈ c·n·log n with c = {:.3} (max tail deviation {:.1}%) — the O(n log n) \
         bound of Theorem 3 holds with a small constant",
        fit.constant,
        fit.max_rel_dev * 100.0
    ));
    r.series.push(total_series);
    // Engine agreement (the unit tests also enforce this; recorded here).
    for &d in &cfg.engine_dims {
        let eng = runs
            .get_or_run(RunKey::engine(StrategyKind::Clean, d, Policy::Fifo))
            .metrics;
        let fast = runs
            .get_or_run(RunKey::fast(StrategyKind::Clean, d))
            .metrics;
        assert_eq!(eng.worker_moves, fast.worker_moves);
        assert_eq!(eng.coordinator_moves, fast.coordinator_moves);
    }
    r.notes.push(format!(
        "discrete-event engine and procedural trace agree move-for-move for d in {:?}",
        cfg.engine_dims
    ));
    r
}

/// T4 (Theorem 4): ideal time of Algorithm CLEAN.
pub fn t4_clean_time(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t4",
        "ideal time of Algorithm CLEAN (Theorem 4)",
        "the cleaning is carried out sequentially by the synchronizer; the time equals the \
         synchronizer's walk up to the concurrent reinforcement trips — O(n log n)",
    );
    let mut table = Table::new(
        "CLEAN ideal time (synchronous schedule)",
        &[
            "d",
            "ideal time (rounds with moves)",
            "sync moves",
            "time/sync moves",
            "time/(n log n)",
        ],
    );
    let mut series = Series::new("CLEAN ideal time");
    for &d in &cfg.sync_engine_dims {
        let outcome = runs.get_or_run(RunKey::engine(StrategyKind::Clean, d, Policy::Synchronous));
        let t = outcome.metrics.ideal_time.expect("synchronous run") as f64;
        let sync = outcome.metrics.coordinator_moves as f64;
        let nlogn = (comb::pow2(d) * d.max(1) as u128) as f64;
        table.push_row(vec![
            d.to_string(),
            fmt_u64(t as u64),
            fmt_u64(sync as u64),
            fmt_ratio(t, sync),
            fmt_ratio(t, nlogn),
        ]);
        series.push(u64::from(d), t);
        assert!(t >= sync, "the sequential walk lower-bounds the time");
    }
    r.tables.push(table);
    r.series.push(series);
    r.notes.push(
        "the measured makespan tracks the synchronizer's move count within a small constant \
         factor (waiting for order pickups and reinforcement arrivals adds rounds), matching \
         Theorem 4's sequential-time argument"
            .into(),
    );
    r
}

fn visibility_table(
    cfg: &ExperimentConfig,
    runs: &RunCache,
    metric: &str,
    extract: impl Fn(&hypersweep_sim::Metrics) -> u64,
    predict: impl Fn(u32) -> u128,
) -> (Table, Series) {
    let mut table = Table::new(
        format!("visibility strategy {metric} vs dimension"),
        &["d", "n", "measured", "predicted", "match"],
    );
    let mut series = Series::new(format!("visibility {metric}"));
    for &d in &cfg.fast_dims {
        let m = runs
            .get_or_run(RunKey::fast(StrategyKind::Visibility, d))
            .metrics;
        let measured = extract(&m);
        let predicted = predict(d);
        table.push_row(vec![
            d.to_string(),
            fmt_u128(comb::pow2(d)),
            fmt_u64(measured),
            fmt_u128(predicted),
            if u128::from(measured) == predicted {
                "OK".into()
            } else {
                "MISMATCH".into()
            },
        ]);
        series.push(u64::from(d), measured as f64);
    }
    (table, series)
}

/// T5 (Theorem 5): the visibility strategy uses exactly `n/2` agents.
pub fn t5_visibility_agents(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t5",
        "agents of CLEAN WITH VISIBILITY (Theorem 5)",
        "the total number of agents needed is exactly n/2; they end as the guards of the \
         broadcast tree's n/2 leaves",
    );
    let (table, series) = visibility_table(
        cfg,
        runs,
        "agents",
        |m| m.team_size,
        |d| visibility_prediction(d).agents,
    );
    r.tables.push(table);
    r.series.push(series);
    for &d in &cfg.engine_dims {
        let outcome = runs.get_or_run(RunKey::engine(StrategyKind::Visibility, d, Policy::Fifo));
        assert!(outcome.is_complete());
        assert_eq!(
            u128::from(outcome.metrics.team_size),
            visibility_prediction(d).agents
        );
    }
    r.notes.push(format!(
        "engine runs confirm the exact count for d in {:?}",
        cfg.engine_dims
    ));
    r
}

/// T6 (Theorem 6 + Lemma 5): monotonicity and contiguity under every
/// adversary.
pub fn t6_monotonicity(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t6",
        "no recontamination under any schedule (Theorems 1 and 6)",
        "during both strategies clean nodes are never recontaminated, the clean region stays \
         contiguous, and the intruder is captured — under every asynchronous adversary",
    );
    let mut table = Table::new(
        "adversary matrix: completed searches / violations",
        &["strategy", "policy", "dims", "runs", "violations"],
    );
    let policies = Policy::adversaries(cfg.adversary_seeds);
    let dims: Vec<u32> = cfg.engine_dims.clone();
    let mut total_runs = 0u64;
    for (strategy_name, kind) in [
        ("clean", StrategyKind::Clean),
        ("visibility", StrategyKind::Visibility),
        ("cloning", StrategyKind::Cloning),
    ] {
        for policy in &policies {
            let mut runs_count = 0u64;
            let mut violations = 0u64;
            for &d in &dims {
                let outcome = runs.get_or_run(RunKey::engine(kind, d, *policy));
                runs_count += 1;
                if !outcome.is_complete() {
                    violations += outcome.verdict.violations.len().max(1) as u64;
                }
            }
            total_runs += runs_count;
            table.push_row(vec![
                strategy_name.into(),
                policy.name(),
                format!("{dims:?}"),
                runs_count.to_string(),
                violations.to_string(),
            ]);
        }
    }
    r.tables.push(table);
    r.notes.push(format!(
        "{total_runs} adversarial runs, every one monotone, contiguous, complete, and \
         intruder-capturing"
    ));
    // §2's memory claim: O(log n) bits of whiteboard and local state.
    let mut bits = Table::new(
        "peak whiteboard/local-state bits vs the O(log n) claim (§2)",
        &["d", "strategy", "board bits", "local bits", "log2 n"],
    );
    for &d in &cfg.engine_dims {
        for (name, kind) in [
            ("clean", StrategyKind::Clean),
            ("visibility", StrategyKind::Visibility),
        ] {
            let m = runs
                .get_or_run(RunKey::engine(kind, d, Policy::Random(1)))
                .metrics;
            bits.push_row(vec![
                d.to_string(),
                name.into(),
                m.peak_board_bits.to_string(),
                m.peak_local_bits.to_string(),
                d.to_string(),
            ]);
            assert!(
                m.peak_board_bits <= 16 * d + 64,
                "board bits blow up at d={d}"
            );
        }
    }
    r.tables.push(bits);
    r
}

/// T7 (Theorem 7): the visibility strategy cleans in `log n` time units.
pub fn t7_visibility_time(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t7",
        "ideal time of CLEAN WITH VISIBILITY (Theorem 7)",
        "cleaning the entire network takes exactly log n = d time units; the wave cleaned at \
         time i is the class C_i",
    );
    let (table, series) = visibility_table(
        cfg,
        runs,
        "ideal time",
        |m| m.ideal_time.expect("fast path reports the wave count"),
        u128::from,
    );
    r.tables.push(table);
    r.series.push(series);
    for &d in &cfg.sync_engine_dims {
        let outcome = runs.get_or_run(RunKey::engine(
            StrategyKind::Visibility,
            d,
            Policy::Synchronous,
        ));
        assert_eq!(outcome.metrics.ideal_time, Some(u64::from(d)), "d={d}");
    }
    r.notes.push(format!(
        "lock-step engine runs measure exactly d rounds with moves for d in {:?}",
        cfg.sync_engine_dims
    ));
    r
}

/// T8 (Theorem 8): moves of the visibility strategy.
pub fn t8_visibility_moves(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t8",
        "moves of CLEAN WITH VISIBILITY (Theorem 8)",
        "the agents perform Σ l·C(d−1,l−1) = (n/4)(log n + 1) moves in total — O(n log n)",
    );
    let (table, series) = visibility_table(
        cfg,
        runs,
        "moves",
        |m| m.worker_moves,
        |d| visibility_prediction(d).moves,
    );
    r.tables.push(table);
    let fit = series
        .fit_against(|d| (comb::pow2(d as u32) * u128::from(d)) as f64)
        .expect("enough dims");
    r.notes.push(format!(
        "moves ≈ c·n·log n with c = {:.3} (tail deviation {:.1}%): the Theorem 8 order holds; \
         the exact closed form matches every d",
        fit.constant,
        fit.max_rel_dev * 100.0
    ));
    r.series.push(series);
    r
}

/// T9 (§5): the cloning variant.
pub fn t9_cloning(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t9",
        "cloning variant (§5)",
        "with cloning, one initial agent suffices; the team still grows to n/2, the time stays \
         log n, and the moves drop to n − 1",
    );
    let mut table = Table::new(
        "cloning variant vs dimension",
        &[
            "d",
            "agents (measured)",
            "agents n/2",
            "moves (measured)",
            "moves n-1",
            "ideal time",
            "time d",
        ],
    );
    for &d in &cfg.fast_dims {
        let m = runs
            .get_or_run(RunKey::fast(StrategyKind::Cloning, d))
            .metrics;
        let p = cloning_prediction(d);
        assert_eq!(u128::from(m.total_moves()), p.moves);
        assert_eq!(u128::from(m.team_size), p.agents);
        table.push_row(vec![
            d.to_string(),
            fmt_u64(m.team_size),
            fmt_u128(p.agents),
            fmt_u64(m.total_moves()),
            fmt_u128(p.moves),
            m.ideal_time.map(|t| t.to_string()).unwrap_or_default(),
            d.to_string(),
        ]);
    }
    r.tables.push(table);
    for &d in &cfg.engine_dims {
        let outcome = runs.get_or_run(RunKey::engine(StrategyKind::Cloning, d, Policy::Lifo));
        assert!(outcome.is_complete());
    }
    r.notes.push(format!(
        "engine runs (including depth-first LIFO adversaries) confirm the counts for d in {:?}",
        cfg.engine_dims
    ));
    r
}

/// T10 (§5): the synchronous variant without visibility.
pub fn t10_synchronous_variant(cfg: &ExperimentConfig, runs: &RunCache) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "t10",
        "synchronous variant (§5)",
        "with synchronous starts, moving exactly at t = m(x) reproduces the visibility \
         strategy's complexity with no visibility at all",
    );
    let mut table = Table::new(
        "synchronous variant vs visibility strategy",
        &["d", "agents", "moves", "ideal time", "equals visibility"],
    );
    for &d in &cfg.sync_engine_dims {
        let a = runs.get_or_run(RunKey::engine(
            StrategyKind::Synchronous,
            d,
            Policy::Synchronous,
        ));
        let b = runs.get_or_run(RunKey::engine(
            StrategyKind::Visibility,
            d,
            Policy::Synchronous,
        ));
        let equal = a.metrics.team_size == b.metrics.team_size
            && a.metrics.total_moves() == b.metrics.total_moves()
            && a.metrics.ideal_time == b.metrics.ideal_time;
        assert!(a.is_complete() && equal, "d={d}");
        table.push_row(vec![
            d.to_string(),
            fmt_u64(a.metrics.team_size),
            fmt_u64(a.metrics.total_moves()),
            a.metrics
                .ideal_time
                .map(|t| t.to_string())
                .unwrap_or_default(),
            "OK".into(),
        ]);
    }
    r.tables.push(table);
    r.notes.push(
        "asynchronous schedules are rejected by construction (the variant is undefined \
               without a global clock)"
            .into(),
    );
    r
}
