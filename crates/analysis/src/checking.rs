//! Parallel schedule-exploration campaigns on the harness worker pool.
//!
//! `hypersweep-check` explores one schedule at a time; a campaign is
//! thousands of them, embarrassingly parallel. This module chunks the
//! schedule range into fixed-size slices (independent of the worker count,
//! so *which* schedules run never depends on `--jobs`), fans the slices out
//! through [`execute_jobs_metered`], and merges the per-slice outcomes
//! submission-ordered — the reported counterexample is always the one with
//! the **lowest schedule index**, making the campaign verdict deterministic
//! for a fixed `(strategy, dim, schedules, seed)` regardless of
//! parallelism.
//!
//! Telemetry lands in the `check.*` series: `check.schedules`,
//! `check.steps`, `check.events`, `check.violations` counters and the
//! per-schedule `check.schedule_us` wall-time histogram.

use std::time::{Duration, Instant};

use hypersweep_check::{explore_schedule_in, shrunk_replay, CheckArena, CheckConfig, ReplayFile};
use hypersweep_telemetry::MetricsRegistry;

use crate::pool::execute_jobs_metered;
use crate::table::Table;

/// Fixed slice width for the fan-out. Small enough to load-balance a
/// contended pool, large enough that per-job overhead stays negligible.
const SLICE: u64 = 32;

/// One campaign: explore `schedules` seeded schedules of `cfg`.
#[derive(Clone, Copy, Debug)]
pub struct CheckCampaign {
    /// The checking problem (strategy, dimension, bounds).
    pub cfg: CheckConfig,
    /// How many schedules to explore (`0..schedules`).
    pub schedules: u64,
    /// Campaign seed; schedule `s` runs under the adversary
    /// `Adversary::for_schedule(seed, s)`.
    pub seed: u64,
}

/// What a campaign found.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Strategy name.
    pub strategy: String,
    /// Hypercube dimension.
    pub dim: u32,
    /// Schedules actually explored (slices stop at their first violation,
    /// so this can undershoot the request when a counterexample exists).
    pub schedules_run: u64,
    /// Decision steps executed across all explored schedules.
    pub steps: u64,
    /// Events fed through the oracles.
    pub events: u64,
    /// Violating schedules seen across all slices.
    pub violations: u64,
    /// The lowest-index counterexample, shrunk and ready to serialize.
    /// `None` means every explored schedule upheld every invariant.
    pub counterexample: Option<ReplayFile>,
    /// Campaign wall time.
    pub elapsed: Duration,
}

impl CampaignOutcome {
    /// Schedules per second of wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.schedules_run as f64 / secs
        } else {
            0.0
        }
    }
}

/// What one pool job (a slice of the schedule range) reports back.
struct SliceOutcome {
    schedules_run: u64,
    steps: u64,
    events: u64,
    violations: u64,
    /// Lowest violating schedule in the slice, with its run.
    first: Option<(u64, hypersweep_check::ScheduleRun)>,
}

/// Run one campaign on `jobs` pool workers, recording `check.*` telemetry
/// into `registry`. Deterministic verdict: the returned counterexample is
/// the lowest-index violating schedule regardless of `jobs`.
pub fn run_campaign(
    campaign: &CheckCampaign,
    jobs: usize,
    registry: &MetricsRegistry,
) -> CampaignOutcome {
    let started = Instant::now();
    let cfg = campaign.cfg;
    let seed = campaign.seed;
    let schedules_counter = registry.counter("check.schedules");
    let steps_counter = registry.counter("check.steps");
    let events_counter = registry.counter("check.events");
    let violations_counter = registry.counter("check.violations");
    let schedule_us = registry.histogram("check.schedule_us");

    let slices: Vec<(u64, u64)> = (0..campaign.schedules)
        .step_by(SLICE.max(1) as usize)
        .map(|lo| (lo, (lo + SLICE).min(campaign.schedules)))
        .collect();
    let work: Vec<_> = slices
        .into_iter()
        .map(|(lo, hi)| {
            let schedules_counter = schedules_counter.clone();
            let steps_counter = steps_counter.clone();
            let events_counter = events_counter.clone();
            let violations_counter = violations_counter.clone();
            let schedule_us = schedule_us.clone();
            move || {
                let mut out = SliceOutcome {
                    schedules_run: 0,
                    steps: 0,
                    events: 0,
                    violations: 0,
                    first: None,
                };
                // One arena per slice: the 32 schedules recycle the oracle
                // field's allocations instead of paying O(n) setup each.
                let mut arena = CheckArena::new();
                for schedule in lo..hi {
                    let t0 = Instant::now();
                    let run = explore_schedule_in(&cfg, seed, schedule, &mut arena);
                    schedule_us.record(t0.elapsed().as_micros() as u64);
                    out.schedules_run += 1;
                    out.steps += run.steps;
                    out.events += run.events;
                    schedules_counter.add(1);
                    steps_counter.add(run.steps);
                    events_counter.add(run.events);
                    if run.violation.is_some() {
                        out.violations += 1;
                        violations_counter.add(1);
                        out.first = Some((schedule, run));
                        // The slice stops here; lower-index slices keep
                        // running, so the merged winner is still global.
                        break;
                    }
                }
                out
            }
        })
        .collect();

    let results = execute_jobs_metered(work, jobs.max(1), registry);

    let mut outcome = CampaignOutcome {
        strategy: cfg.strategy.name().to_string(),
        dim: cfg.dim,
        schedules_run: 0,
        steps: 0,
        events: 0,
        violations: 0,
        counterexample: None,
        elapsed: Duration::ZERO,
    };
    let mut winner: Option<(u64, hypersweep_check::ScheduleRun)> = None;
    for slice in results {
        outcome.schedules_run += slice.schedules_run;
        outcome.steps += slice.steps;
        outcome.events += slice.events;
        outcome.violations += slice.violations;
        if let Some((schedule, run)) = slice.first {
            // Slices arrive in submission order (ascending ranges), so the
            // first hit is the lowest schedule; keep the min anyway for
            // robustness.
            if winner.as_ref().is_none_or(|(s, _)| schedule < *s) {
                winner = Some((schedule, run));
            }
        }
    }
    if let Some((schedule, run)) = winner {
        outcome.counterexample = Some(shrunk_replay(&cfg, seed, schedule, run));
    }
    outcome.elapsed = started.elapsed();
    outcome
}

/// Render campaign outcomes as the summary table `hypersweep check` prints.
pub fn campaign_table(outcomes: &[CampaignOutcome]) -> Table {
    let mut table = Table::new(
        "schedule-exploration campaigns",
        &[
            "strategy",
            "dim",
            "schedules",
            "steps",
            "events",
            "sched/s",
            "violations",
            "verdict",
        ],
    );
    for o in outcomes {
        let verdict = match &o.counterexample {
            Some(replay) => format!("FAIL @ schedule {} ({})", replay.schedule, replay.violation),
            None => "ok".to_string(),
        };
        table.push_row(vec![
            o.strategy.clone(),
            o.dim.to_string(),
            o.schedules_run.to_string(),
            o.steps.to_string(),
            o.events.to_string(),
            format!("{:.0}", o.throughput()),
            o.violations.to_string(),
            verdict,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_check::CheckStrategy;

    fn campaign(strategy: CheckStrategy, schedules: u64) -> CheckCampaign {
        CheckCampaign {
            cfg: CheckConfig::new(strategy, 4),
            schedules,
            seed: 0xFEED,
        }
    }

    #[test]
    fn clean_campaign_is_quiet_and_deterministic_across_jobs() {
        let c = campaign(CheckStrategy::Clean, 80);
        let reg = MetricsRegistry::disabled();
        let serial = run_campaign(&c, 1, &reg);
        let pooled = run_campaign(&c, 8, &reg);
        assert_eq!(serial.violations, 0);
        assert_eq!(serial.counterexample.as_ref().map(|r| r.to_json()), None);
        assert_eq!(serial.schedules_run, pooled.schedules_run);
        assert_eq!(serial.steps, pooled.steps);
        assert_eq!(serial.events, pooled.events);
    }

    #[test]
    fn mutant_campaign_reports_the_lowest_counterexample_for_any_jobs() {
        let c = campaign(CheckStrategy::MutantEagerGuard, 200);
        let reg = MetricsRegistry::disabled();
        let serial = run_campaign(&c, 1, &reg);
        let pooled = run_campaign(&c, 8, &reg);
        let a = serial.counterexample.expect("mutant caught serially");
        let b = pooled.counterexample.expect("mutant caught pooled");
        assert_eq!(a.to_json(), b.to_json(), "verdict depends on --jobs");
        assert!(serial.violations >= 1);
    }

    #[test]
    fn campaign_telemetry_lands_in_check_series() {
        let reg = MetricsRegistry::new();
        let c = campaign(CheckStrategy::Visibility, 12);
        let out = run_campaign(&c, 2, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("check.schedules"), Some(out.schedules_run));
        assert_eq!(snap.counter("check.steps"), Some(out.steps));
        assert_eq!(snap.counter("check.violations"), Some(0));
        assert_eq!(
            snap.histogram("check.schedule_us").map(|h| h.count),
            Some(out.schedules_run)
        );
    }

    #[test]
    fn table_renders_one_row_per_campaign() {
        let reg = MetricsRegistry::disabled();
        let outcomes: Vec<_> = [CheckStrategy::Clean, CheckStrategy::MutantEagerGuard]
            .into_iter()
            .map(|s| run_campaign(&campaign(s, 120), 4, &reg))
            .collect();
        let table = campaign_table(&outcomes);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].last().unwrap(), "ok");
        assert!(table.rows[1].last().unwrap().starts_with("FAIL @ schedule"));
    }
}
