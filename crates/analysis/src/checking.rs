//! Parallel schedule-exploration campaigns on the harness worker pool.
//!
//! `hypersweep-check` explores one schedule at a time; a campaign is
//! thousands — now hundreds of thousands — of them, embarrassingly
//! parallel. This module **streams** the schedule range through
//! [`execute_schedule_stream`]: workers claim fixed-width slices from a
//! shared atomic counter (nothing materialized up front, so a 100k-schedule
//! campaign enqueues zero heap-allocated jobs), each worker keeps **one**
//! [`CheckArena`] for its whole lifetime (the oracle field's `O(n)`
//! allocations are paid once per worker, not once per slice), and a shared
//! cutoff lets workers skip every slice above the lowest violation found so
//! far. The reported counterexample is always the one with the **lowest
//! schedule index**, deterministic for a fixed `(strategy, dim, schedules,
//! seed)` regardless of parallelism — see
//! [`crate::pool::StreamCutoff`] for why the cutoff cannot skip the
//! winner.
//!
//! Telemetry lands in the `check.*` series: `check.schedules`,
//! `check.steps`, `check.events`, `check.violations`, `check.slices`,
//! `check.slices_skipped` counters, the per-schedule `check.schedule_us`
//! wall-time histogram, and per-campaign `span.check.campaign_us` /
//! `span.check.shrink_us` phase spans (rendered by `check --timings`).

use std::time::{Duration, Instant};

use hypersweep_check::{explore_schedule_in, shrunk_replay, CheckArena, CheckConfig, ReplayFile};
use hypersweep_telemetry::MetricsRegistry;

use crate::pool::execute_schedule_stream;
use crate::table::Table;

/// Fixed slice width for the fan-out, independent of the worker count so
/// *which* schedules a slice covers never depends on `--jobs`. Small
/// enough to load-balance a contended pool, large enough that per-slice
/// claim overhead stays negligible. Streaming means slice count never
/// translates into queued memory: a 100k-schedule campaign holds exactly
/// one claim counter, not 3125 queued closures.
const SLICE: u64 = 32;

/// Upper bound on `--campaign-size`: beyond this even the widened kernels
/// need days, so larger requests are almost certainly typos.
pub const MAX_CAMPAIGN_SCHEDULES: u64 = 10_000_000;

/// Upper bound on `--stride` (events between oracle checks): strides past
/// this exceed any schedule's event count and silently disable the oracles.
pub const MAX_CHECK_STRIDE: u64 = 1_000_000;

/// Validate a campaign size the way `validate_max_dim` validates `--max-dim`:
/// reject 0 (an empty campaign proves nothing) and absurd sizes.
pub fn validate_campaign_size(schedules: u64) -> Result<u64, String> {
    if schedules == 0 {
        Err(format!(
            "--campaign-size must be at least 1 (a 0-schedule campaign explores nothing); \
             valid range is 1..={MAX_CAMPAIGN_SCHEDULES}"
        ))
    } else if schedules > MAX_CAMPAIGN_SCHEDULES {
        Err(format!(
            "--campaign-size {schedules} exceeds the supported limit {MAX_CAMPAIGN_SCHEDULES} \
             (larger campaigns take days even at wide-kernel throughput); \
             valid range is 1..={MAX_CAMPAIGN_SCHEDULES}"
        ))
    } else {
        Ok(schedules)
    }
}

/// Validate an oracle stride: reject 0 (ambiguous with the derived
/// default — pass nothing instead) and absurd values.
pub fn validate_stride(stride: u64) -> Result<u64, String> {
    if stride == 0 {
        Err(format!(
            "--stride must be at least 1 (the oracles run every stride events; \
             omit the flag for the default stride of 1); \
             valid range is 1..={MAX_CHECK_STRIDE}"
        ))
    } else if stride > MAX_CHECK_STRIDE {
        Err(format!(
            "--stride {stride} exceeds the supported limit {MAX_CHECK_STRIDE} \
             (no schedule produces that many events, so the oracles would never run); \
             valid range is 1..={MAX_CHECK_STRIDE}"
        ))
    } else {
        Ok(stride)
    }
}

/// One campaign: explore `schedules` seeded schedules of `cfg`.
#[derive(Clone, Copy, Debug)]
pub struct CheckCampaign {
    /// The checking problem (strategy, dimension, bounds).
    pub cfg: CheckConfig,
    /// How many schedules to explore (`0..schedules`).
    pub schedules: u64,
    /// Campaign seed; schedule `s` runs under the adversary
    /// `Adversary::for_schedule(seed, s)`.
    pub seed: u64,
    /// Negative control: force the schedule at this index to violate by
    /// running it under a 1-step budget (a guaranteed `StepLimit`). The
    /// campaign must then report exactly this index (or a lower natural
    /// violation) for **any** job count — a seeded mid-campaign mutant
    /// that proves the streaming cutoff cannot lose the winner.
    pub planted: Option<u64>,
}

/// What a campaign found.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Strategy name.
    pub strategy: String,
    /// Hypercube dimension.
    pub dim: u32,
    /// Schedules actually explored (slices stop at their first violation,
    /// so this can undershoot the request when a counterexample exists).
    pub schedules_run: u64,
    /// Decision steps executed across all explored schedules.
    pub steps: u64,
    /// Events fed through the oracles.
    pub events: u64,
    /// Violating schedules seen across all slices.
    pub violations: u64,
    /// The lowest-index counterexample, shrunk and ready to serialize.
    /// `None` means every explored schedule upheld every invariant.
    pub counterexample: Option<ReplayFile>,
    /// Campaign wall time.
    pub elapsed: Duration,
}

impl CampaignOutcome {
    /// Schedules per second of wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.schedules_run as f64 / secs
        } else {
            0.0
        }
    }
}

/// What one streaming worker accumulates over every slice it claims.
struct WorkerTally {
    arena: CheckArena,
    schedules_run: u64,
    steps: u64,
    events: u64,
    violations: u64,
    /// Lowest violating schedule this worker saw, with its run.
    best: Option<(u64, hypersweep_check::ScheduleRun)>,
}

/// The config a specific schedule runs under: the campaign config, except
/// a planted schedule gets a 1-step budget (guaranteed `StepLimit`).
fn schedule_cfg(campaign: &CheckCampaign, schedule: u64) -> CheckConfig {
    let mut cfg = campaign.cfg;
    if campaign.planted == Some(schedule) {
        cfg.max_steps = 1;
    }
    cfg
}

/// Run one campaign on `jobs` streaming workers, recording `check.*`
/// telemetry into `registry`. Deterministic verdict: the returned
/// counterexample is the lowest-index violating schedule regardless of
/// `jobs`; aggregate tallies are deterministic whenever the campaign is
/// quiet (no violation ⇒ the cutoff never engages and every schedule
/// runs).
pub fn run_campaign(
    campaign: &CheckCampaign,
    jobs: usize,
    registry: &MetricsRegistry,
) -> CampaignOutcome {
    let started = Instant::now();
    let cfg = campaign.cfg;
    let seed = campaign.seed;
    let schedules_counter = registry.counter("check.schedules");
    let steps_counter = registry.counter("check.steps");
    let events_counter = registry.counter("check.events");
    let violations_counter = registry.counter("check.violations");
    let schedule_us = registry.histogram("check.schedule_us");

    let tallies = execute_schedule_stream(
        campaign.schedules,
        SLICE,
        jobs.max(1),
        registry,
        "check",
        |_worker| WorkerTally {
            // One arena per *worker* for the whole campaign: every slice
            // it claims recycles the oracle field's allocations.
            arena: CheckArena::new(),
            schedules_run: 0,
            steps: 0,
            events: 0,
            violations: 0,
            best: None,
        },
        |tally, schedule| {
            let run_cfg = schedule_cfg(campaign, schedule);
            let t0 = Instant::now();
            let run = explore_schedule_in(&run_cfg, seed, schedule, &mut tally.arena);
            schedule_us.record(t0.elapsed().as_micros() as u64);
            tally.schedules_run += 1;
            tally.steps += run.steps;
            tally.events += run.events;
            schedules_counter.add(1);
            steps_counter.add(run.steps);
            events_counter.add(run.events);
            if run.violation.is_some() {
                tally.violations += 1;
                violations_counter.add(1);
                if tally.best.as_ref().is_none_or(|(s, _)| schedule < *s) {
                    tally.best = Some((schedule, run));
                }
                true
            } else {
                false
            }
        },
    );

    let mut outcome = CampaignOutcome {
        strategy: cfg.strategy.name().to_string(),
        dim: cfg.dim,
        schedules_run: 0,
        steps: 0,
        events: 0,
        violations: 0,
        counterexample: None,
        elapsed: Duration::ZERO,
    };
    let mut winner: Option<(u64, hypersweep_check::ScheduleRun)> = None;
    for tally in tallies {
        outcome.schedules_run += tally.schedules_run;
        outcome.steps += tally.steps;
        outcome.events += tally.events;
        outcome.violations += tally.violations;
        if let Some((schedule, run)) = tally.best {
            if winner.as_ref().is_none_or(|(s, _)| schedule < *s) {
                winner = Some((schedule, run));
            }
        }
    }
    if let Some((schedule, run)) = winner {
        let shrink_cfg = schedule_cfg(campaign, schedule);
        let t0 = Instant::now();
        outcome.counterexample = Some(shrunk_replay(&shrink_cfg, seed, schedule, run));
        registry
            .histogram("span.check.shrink_us")
            .record(t0.elapsed().as_micros() as u64);
    }
    outcome.elapsed = started.elapsed();
    registry
        .histogram("span.check.campaign_us")
        .record(outcome.elapsed.as_micros() as u64);
    outcome
}

/// Render campaign outcomes as the summary table `hypersweep check` prints.
pub fn campaign_table(outcomes: &[CampaignOutcome]) -> Table {
    let mut table = Table::new(
        "schedule-exploration campaigns",
        &[
            "strategy",
            "dim",
            "schedules",
            "steps",
            "events",
            "sched/s",
            "violations",
            "verdict",
        ],
    );
    for o in outcomes {
        let verdict = match &o.counterexample {
            Some(replay) => format!("FAIL @ schedule {} ({})", replay.schedule, replay.violation),
            None => "ok".to_string(),
        };
        table.push_row(vec![
            o.strategy.clone(),
            o.dim.to_string(),
            o.schedules_run.to_string(),
            o.steps.to_string(),
            o.events.to_string(),
            format!("{:.0}", o.throughput()),
            o.violations.to_string(),
            verdict,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_check::CheckStrategy;

    fn campaign(strategy: CheckStrategy, schedules: u64) -> CheckCampaign {
        CheckCampaign {
            cfg: CheckConfig::new(strategy, 4),
            schedules,
            seed: 0xFEED,
            planted: None,
        }
    }

    #[test]
    fn clean_campaign_is_quiet_and_deterministic_across_jobs() {
        let c = campaign(CheckStrategy::Clean, 80);
        let reg = MetricsRegistry::disabled();
        let serial = run_campaign(&c, 1, &reg);
        let pooled = run_campaign(&c, 8, &reg);
        assert_eq!(serial.violations, 0);
        assert_eq!(serial.counterexample.as_ref().map(|r| r.to_json()), None);
        assert_eq!(serial.schedules_run, pooled.schedules_run);
        assert_eq!(serial.steps, pooled.steps);
        assert_eq!(serial.events, pooled.events);
    }

    #[test]
    fn mutant_campaign_reports_the_lowest_counterexample_for_any_jobs() {
        let c = campaign(CheckStrategy::MutantEagerGuard, 200);
        let reg = MetricsRegistry::disabled();
        let serial = run_campaign(&c, 1, &reg);
        let pooled = run_campaign(&c, 8, &reg);
        let a = serial.counterexample.expect("mutant caught serially");
        let b = pooled.counterexample.expect("mutant caught pooled");
        assert_eq!(a.to_json(), b.to_json(), "verdict depends on --jobs");
        assert!(serial.violations >= 1);
    }

    #[test]
    fn campaign_telemetry_lands_in_check_series() {
        let reg = MetricsRegistry::new();
        let c = campaign(CheckStrategy::Visibility, 12);
        let out = run_campaign(&c, 2, &reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("check.schedules"), Some(out.schedules_run));
        assert_eq!(snap.counter("check.steps"), Some(out.steps));
        assert_eq!(snap.counter("check.violations"), Some(0));
        assert_eq!(
            snap.histogram("check.schedule_us").map(|h| h.count),
            Some(out.schedules_run)
        );
    }

    #[test]
    fn planted_violation_is_found_at_exactly_its_index_for_any_jobs() {
        // A mid-campaign planted mutant on an otherwise quiet strategy:
        // the campaign must converge on exactly the planted index no
        // matter how many workers race the stream.
        for planted in [0u64, 37, 79] {
            let mut c = campaign(CheckStrategy::Clean, 80);
            c.planted = Some(planted);
            let reg = MetricsRegistry::disabled();
            let mut jsons = Vec::new();
            for jobs in [1usize, 2, 8] {
                let out = run_campaign(&c, jobs, &reg);
                let replay = out
                    .counterexample
                    .unwrap_or_else(|| panic!("planted @ {planted} missed at jobs={jobs}"));
                assert_eq!(replay.schedule, planted, "jobs = {jobs}");
                jsons.push(replay.to_json());
            }
            assert!(
                jsons.windows(2).all(|w| w[0] == w[1]),
                "planted counterexample must serialize identically across jobs"
            );
        }
    }

    #[test]
    fn streaming_cutoff_skips_work_and_records_slice_telemetry() {
        // With a violation planted at schedule 0, every slice past the
        // first should be skipped (modulo races), and the slice counters
        // must account for all slices either way.
        let mut c = campaign(CheckStrategy::Clean, 640);
        c.planted = Some(0);
        let reg = MetricsRegistry::new();
        let out = run_campaign(&c, 1, &reg);
        assert_eq!(out.counterexample.unwrap().schedule, 0);
        let snap = reg.snapshot();
        let claimed = snap.counter("check.slices").unwrap_or(0);
        let skipped = snap.counter("check.slices_skipped").unwrap_or(0);
        assert_eq!(claimed + skipped, 640 / 32, "every slice accounted for");
        assert!(
            skipped >= 640 / 32 - 1,
            "serial stream past a schedule-0 violation must skip the rest (skipped {skipped})"
        );
        // Serial + planted-at-0 ⇒ exactly one schedule ran.
        assert_eq!(out.schedules_run, 1);
    }

    #[test]
    fn campaign_spans_are_recorded() {
        let reg = MetricsRegistry::new();
        let c = campaign(CheckStrategy::Clean, 16);
        run_campaign(&c, 2, &reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram("span.check.campaign_us").map(|h| h.count),
            Some(1)
        );
        assert_eq!(
            snap.histogram("span.check.shrink_us"),
            None,
            "quiet: no shrink"
        );
        let mut m = campaign(CheckStrategy::MutantEagerGuard, 16);
        m.planted = None;
        run_campaign(&m, 2, &reg);
        assert_eq!(
            reg.snapshot()
                .histogram("span.check.shrink_us")
                .map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn campaign_size_validation_rejects_zero_and_absurd() {
        assert!(validate_campaign_size(0).is_err());
        assert_eq!(validate_campaign_size(1), Ok(1));
        assert_eq!(
            validate_campaign_size(MAX_CAMPAIGN_SCHEDULES),
            Ok(MAX_CAMPAIGN_SCHEDULES)
        );
        let err = validate_campaign_size(MAX_CAMPAIGN_SCHEDULES + 1).unwrap_err();
        assert!(err.contains("valid range"), "structured message: {err}");
    }

    #[test]
    fn stride_validation_rejects_zero_and_absurd() {
        assert!(validate_stride(0).is_err());
        assert_eq!(validate_stride(1), Ok(1));
        assert_eq!(validate_stride(MAX_CHECK_STRIDE), Ok(MAX_CHECK_STRIDE));
        let err = validate_stride(MAX_CHECK_STRIDE + 1).unwrap_err();
        assert!(err.contains("valid range"), "structured message: {err}");
    }

    #[test]
    fn table_renders_one_row_per_campaign() {
        let reg = MetricsRegistry::disabled();
        let outcomes: Vec<_> = [CheckStrategy::Clean, CheckStrategy::MutantEagerGuard]
            .into_iter()
            .map(|s| run_campaign(&campaign(s, 120), 4, &reg))
            .collect();
        let table = campaign_table(&outcomes);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0].last().unwrap(), "ok");
        assert!(table.rows[1].last().unwrap().starts_with("FAIL @ schedule"));
    }
}
