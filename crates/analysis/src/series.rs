//! Figure-shaped data series (x/y pairs with labels).

use serde::{Deserialize, Serialize};

/// One labelled series of points, the figure analogue of a table column.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// x values (dimension, level, class index, …).
    pub x: Vec<u64>,
    /// y values.
    pub y: Vec<f64>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: u64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }

    /// Build from pairs.
    pub fn from_points(label: impl Into<String>, points: &[(u64, f64)]) -> Self {
        let mut s = Series::new(label);
        for &(x, y) in points {
            s.push(x, y);
        }
        s
    }

    /// Fit `y ≈ c · g(x)` by averaging `y/g(x)` over the tail half of the
    /// series and report the maximum relative deviation of the tail from
    /// the fitted constant — a simple, robust empirical-order check used by
    /// the asymptotic-shape tests.
    pub fn fit_against(&self, g: impl Fn(u64) -> f64) -> Option<OrderFit> {
        if self.x.len() < 2 {
            return None;
        }
        let start = self.x.len() / 2;
        let ratios: Vec<f64> = self.x[start..]
            .iter()
            .zip(&self.y[start..])
            .map(|(&x, &y)| y / g(x))
            .collect();
        let c = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max_rel_dev = ratios
            .iter()
            .map(|r| ((r - c) / c).abs())
            .fold(0.0f64, f64::max);
        Some(OrderFit {
            constant: c,
            max_rel_dev,
        })
    }
}

/// Result of [`Series::fit_against`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OrderFit {
    /// The fitted constant `c`.
    pub constant: f64,
    /// Maximum relative deviation of the tail from `c` (0 = perfect fit).
    pub max_rel_dev: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_order_fits_with_zero_deviation() {
        // y = 3·x·2^x fits g(x) = x·2^x perfectly.
        let mut s = Series::new("exact");
        for d in 1..=12u64 {
            s.push(d, 3.0 * d as f64 * (1u64 << d) as f64);
        }
        let fit = s.fit_against(|x| x as f64 * (1u64 << x) as f64).unwrap();
        assert!((fit.constant - 3.0).abs() < 1e-9);
        assert!(fit.max_rel_dev < 1e-9);
    }

    #[test]
    fn wrong_order_shows_drift() {
        // y = 2^x against g(x) = x: ratios diverge.
        let mut s = Series::new("wrong");
        for d in 1..=14u64 {
            s.push(d, (1u64 << d) as f64);
        }
        let fit = s.fit_against(|x| x as f64).unwrap();
        assert!(fit.max_rel_dev > 0.5, "deviation {}", fit.max_rel_dev);
    }

    #[test]
    fn too_short_series_has_no_fit() {
        let s = Series::from_points("one", &[(1, 1.0)]);
        assert!(s.fit_against(|x| x as f64).is_none());
    }
}
