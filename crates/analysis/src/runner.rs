//! Experiment configuration, dispatch, and pooled parallel execution.
//!
//! The harness runs in two phases over one [`RunCache`] and one
//! fixed-size worker pool ([`crate::pool`]):
//!
//! 1. **Warm**: every requested experiment *declares* the strategy runs it
//!    needs ([`experiments::required_runs`]); the declarations are deduped
//!    and executed across the pool, so a run shared by several experiments
//!    (e.g. CLEAN's fast trace, used by T2, T3, E11 and E13) executes once.
//! 2. **Experiments**: the experiments themselves run on the pool and read
//!    their runs back as cache hits.
//!
//! Strategy runs are deterministic per key and results are merged in
//! submission order, so exported JSON is byte-identical for every `--jobs`
//! setting (including sequential `--jobs 1`).

use std::collections::HashSet;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use hypersweep_telemetry::{MetricsRegistry, Span};
use serde::{Deserialize, Serialize};

use crate::cache::RunCache;
use crate::experiments;
use crate::pool::{default_jobs, execute_jobs_metered};
use crate::result::ExperimentResult;

/// How large and how thorough an experiment run should be.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Dimensions evaluated through the fast (procedural) paths.
    pub fast_dims: Vec<u32>,
    /// Dimensions additionally executed on the discrete-event engine under
    /// asynchronous adversaries.
    pub engine_dims: Vec<u32>,
    /// Dimensions executed under the synchronous schedule for ideal-time
    /// measurements (Algorithm CLEAN is sequential, so these stay small).
    pub sync_engine_dims: Vec<u32>,
    /// Number of random-adversary seeds per configuration.
    pub adversary_seeds: u64,
    /// Dimension used for the structural figures (the paper draws `H_6`).
    pub figure_dim: u32,
    /// Dimension used for the order/wavefront figures (the paper draws
    /// `H_4`).
    pub small_figure_dim: u32,
    /// Cap on the heap-queue isomorphism sweep in F1 (`O(n log n)` work
    /// per dimension; structural, so large `d` adds cost without insight).
    pub heap_iso_max_dim: u32,
    /// Cap on the engine-backed cloning-dispatch ablation in E13 (the
    /// smallest-first variant runs `d(d+1)/2` synchronous rounds).
    pub sync_ablation_max_dim: u32,
    /// Cap on the greedy upper-bound planner in E14 (its per-step frontier
    /// scan is quadratic in `n`).
    pub greedy_planner_max_dim: u32,
    /// Largest dimension whose fast runs are audited through the streaming
    /// monitor; above this the `O(n)`-per-contiguity-check audit dominates
    /// and runs report metrics with a vacuous verdict.
    pub audit_max_dim: u32,
}

/// Largest dimension the report sweeps (and the default per-request cap a
/// server enforces): `ExperimentConfig::full()` tops out here, and the
/// streamed audit paths are validated to this size.
pub const REPORT_MAX_DIM: u32 = 20;

/// Validate a user-supplied dimension cap (the CLI's `report --max-dim N`
/// and the server's per-request dimension limit): it must lie in
/// `1..=REPORT_MAX_DIM`. Returns the cap unchanged, or a message naming
/// the valid range.
pub fn validate_max_dim(max_dim: u32) -> Result<u32, String> {
    if max_dim == 0 {
        Err(format!(
            "--max-dim must be at least 1 (a 0-dimension cap would leave nothing to sweep); \
             valid range is 1..={REPORT_MAX_DIM}"
        ))
    } else if max_dim > REPORT_MAX_DIM {
        Err(format!(
            "--max-dim {max_dim} exceeds the supported sweep limit {REPORT_MAX_DIM} \
             (H_{REPORT_MAX_DIM} is the largest validated dimension); \
             valid range is 1..={REPORT_MAX_DIM}"
        ))
    } else {
        Ok(max_dim)
    }
}

/// Validate a user-supplied run-cache capacity (the CLI's and server's
/// `--cache-cap N`): a zero-entry cache would evict every outcome the
/// moment it lands, silently re-executing every shared run. Mirrors
/// [`validate_max_dim`]. Returns the capacity unchanged, or a message
/// naming the valid range.
pub fn validate_cache_cap(cache_cap: usize) -> Result<usize, String> {
    if cache_cap == 0 {
        Err(
            "--cache-cap must be at least 1 (a 0-entry cache would evict every run \
             as it completes and re-execute everything); \
             omit the flag for an unbounded cache"
                .to_string(),
        )
    } else {
        Ok(cache_cap)
    }
}

fn default_heap_iso_max_dim() -> u32 {
    12
}

fn default_sync_ablation_max_dim() -> u32 {
    9
}

fn default_greedy_planner_max_dim() -> u32 {
    11
}

fn default_audit_max_dim() -> u32 {
    12
}

impl ExperimentConfig {
    /// Small and fast: suitable for CI and unit tests (seconds).
    pub fn quick() -> Self {
        ExperimentConfig {
            fast_dims: (1..=10).collect(),
            engine_dims: vec![2, 4, 6],
            sync_engine_dims: vec![2, 4, 6],
            adversary_seeds: 2,
            figure_dim: 6,
            small_figure_dim: 4,
            heap_iso_max_dim: default_heap_iso_max_dim(),
            sync_ablation_max_dim: default_sync_ablation_max_dim(),
            greedy_planner_max_dim: default_greedy_planner_max_dim(),
            audit_max_dim: default_audit_max_dim(),
        }
    }

    /// The full runs recorded in `EXPERIMENTS.md` (tens of seconds). The
    /// fast (procedural, streamed-audit) paths scale to `H_20`.
    pub fn full() -> Self {
        ExperimentConfig {
            fast_dims: (1..=20).collect(),
            engine_dims: vec![2, 3, 4, 5, 6, 7, 8],
            sync_engine_dims: vec![2, 4, 6, 8],
            adversary_seeds: 5,
            figure_dim: 6,
            small_figure_dim: 4,
            heap_iso_max_dim: default_heap_iso_max_dim(),
            sync_ablation_max_dim: default_sync_ablation_max_dim(),
            greedy_planner_max_dim: default_greedy_planner_max_dim(),
            audit_max_dim: default_audit_max_dim(),
        }
    }

    /// Largest fast dimension.
    pub fn fast_max_dim(&self) -> u32 {
        self.fast_dims.iter().copied().max().unwrap_or(1)
    }

    /// Clamp every dimension list to `max_dim` (the CLI's `--max-dim`).
    pub fn clamp_max_dim(&mut self, max_dim: u32) {
        self.fast_dims.retain(|&d| d <= max_dim);
        self.engine_dims.retain(|&d| d <= max_dim);
        self.sync_engine_dims.retain(|&d| d <= max_dim);
    }
}

/// Dispatch one experiment against a shared run cache.
fn dispatch(id: &str, cfg: &ExperimentConfig, runs: &RunCache) -> Option<ExperimentResult> {
    Some(match id {
        "f1" => experiments::f1_broadcast_tree(cfg, runs),
        "f2" => experiments::f2_clean_order(cfg, runs),
        "f3" => experiments::f3_msb_classes(cfg, runs),
        "f4" => experiments::f4_visibility_wavefront(cfg, runs),
        "t2" => experiments::t2_clean_agents(cfg, runs),
        "t3" => experiments::t3_clean_moves(cfg, runs),
        "t4" => experiments::t4_clean_time(cfg, runs),
        "t5" => experiments::t5_visibility_agents(cfg, runs),
        "t6" => experiments::t6_monotonicity(cfg, runs),
        "t7" => experiments::t7_visibility_time(cfg, runs),
        "t8" => experiments::t8_visibility_moves(cfg, runs),
        "t9" => experiments::t9_cloning(cfg, runs),
        "t10" => experiments::t10_synchronous_variant(cfg, runs),
        "e11" => experiments::e11_strategy_comparison(cfg, runs),
        "e12" => experiments::e12_baselines(cfg, runs),
        "e13" => experiments::e13_ablations(cfg, runs),
        "e14" => experiments::e14_open_problem(cfg, runs),
        "e15" => experiments::e15_capture_dynamics(cfg, runs),
        "e16" => experiments::e16_network_survey(cfg, runs),
        _ => return None,
    })
}

/// Run one experiment by id with a private cache; `None` for an unknown id.
pub fn run_experiment(id: &str, cfg: &ExperimentConfig) -> Option<ExperimentResult> {
    dispatch(id, cfg, &RunCache::new())
}

/// Execution statistics for one pooled harness invocation. Deliberately
/// kept out of [`ExperimentResult`]: wall-clock numbers must never reach
/// the exported JSON.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Worker threads used.
    pub jobs: usize,
    /// Run requests served from an already-computed outcome.
    pub cache_hits: u64,
    /// Run requests that executed (once per unique configuration).
    pub cache_misses: u64,
    /// Outcomes dropped by the LRU capacity bound (`0` when unbounded).
    pub cache_evictions: u64,
    /// Distinct strategy runs executed.
    pub unique_runs: usize,
    /// Per-run wall-clock times, slowest first (label, elapsed).
    pub run_timings: Vec<(String, Duration)>,
    /// Per-experiment wall-clock times in presentation order (id, elapsed).
    pub experiment_timings: Vec<(String, Duration)>,
    /// Wall-clock time of the warm phase (deduped strategy runs).
    pub warm_wall: Duration,
    /// Wall-clock time of the experiment phase.
    pub experiments_wall: Duration,
    /// End-to-end wall-clock time of both phases.
    pub wall: Duration,
}

impl RunSummary {
    /// One-line human summary for the CLI.
    pub fn render(&self) -> String {
        let slowest = self
            .run_timings
            .iter()
            .take(3)
            .map(|(label, t)| format!("{label} {:.0}ms", t.as_secs_f64() * 1e3))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "pool: {} jobs; cache: {} hits / {} misses / {} evicted \
             ({} unique runs, {:.1}s run time); \
             wall {:.1}s; slowest runs: {}",
            self.jobs,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.unique_runs,
            self.run_timings
                .iter()
                .map(|(_, t)| t.as_secs_f64())
                .sum::<f64>(),
            self.wall.as_secs_f64(),
            if slowest.is_empty() {
                "-".into()
            } else {
                slowest
            },
        )
    }
}

/// Results plus execution statistics from [`run_ids_pooled`].
#[derive(Debug)]
pub struct HarnessReport {
    /// One result per requested id, in the requested order.
    pub results: Vec<ExperimentResult>,
    /// Pool and cache statistics for the whole invocation.
    pub summary: RunSummary,
}

/// Run the given experiments on a pool of `jobs` workers with a shared,
/// unbounded run cache. Panics on unknown ids (callers validate against
/// [`experiments::ALL_IDS`]).
pub fn run_ids_pooled(ids: &[&str], cfg: &ExperimentConfig, jobs: usize) -> HarnessReport {
    run_ids_pooled_capped(ids, cfg, jobs, None)
}

/// [`run_ids_pooled`] with an optional LRU bound on retained strategy runs
/// (the CLI's `--cache-cap`): long `report all --full` sweeps trade
/// re-execution for bounded memory. `None` keeps every run (the default).
pub fn run_ids_pooled_capped(
    ids: &[&str],
    cfg: &ExperimentConfig,
    jobs: usize,
    cache_cap: Option<usize>,
) -> HarnessReport {
    run_ids_pooled_with(ids, cfg, jobs, cache_cap, &MetricsRegistry::disabled())
}

/// [`run_ids_pooled_capped`] reporting into `registry`: phase spans
/// (`span.report.warm_us`, `span.report.experiments_us`), per-experiment
/// wall time (`experiment.<id>_us` histograms), the pool's job/steal
/// series, and the shared cache's `cache.*` series.
pub fn run_ids_pooled_with(
    ids: &[&str],
    cfg: &ExperimentConfig,
    jobs: usize,
    cache_cap: Option<usize>,
    registry: &MetricsRegistry,
) -> HarnessReport {
    let start = Instant::now();
    let jobs = jobs.max(1);
    let cache = RunCache::with_capacity_and_telemetry(cache_cap, registry);
    let cache = &cache;
    let report_span = Span::enter_in(registry, "report");

    // Phase 1: warm every declared run, deduped in declaration order.
    let warm_start = Instant::now();
    {
        let _warm = Span::enter_in(registry, "warm");
        let mut seen = HashSet::new();
        let warm_jobs: Vec<_> = ids
            .iter()
            .flat_map(|id| experiments::required_runs(id, cfg))
            .filter(|key| seen.insert(*key))
            .map(|key| {
                move || {
                    cache.get_or_run(key);
                }
            })
            .collect();
        execute_jobs_metered(warm_jobs, jobs, registry);
    }
    let warm_wall = warm_start.elapsed();

    // Phase 2: the experiments; their declared runs are now cache hits.
    // `execute_jobs` preserves submission order, so the merge below is
    // deterministic regardless of worker interleaving.
    let experiments_start = Instant::now();
    let timed = {
        let _experiments = Span::enter_in(registry, "experiments");
        let experiment_jobs: Vec<_> = ids
            .iter()
            .map(|&id| {
                move || {
                    let t = Instant::now();
                    let result = dispatch(id, cfg, cache)
                        .unwrap_or_else(|| panic!("unknown experiment id '{id}'"));
                    let elapsed = t.elapsed();
                    registry
                        .histogram(&format!("experiment.{id}_us"))
                        .record_duration(elapsed);
                    (result, elapsed)
                }
            })
            .collect();
        execute_jobs_metered(experiment_jobs, jobs, registry)
    };
    let experiments_wall = experiments_start.elapsed();
    drop(report_span);

    let mut results = Vec::with_capacity(timed.len());
    let mut experiment_timings = Vec::with_capacity(timed.len());
    for (result, elapsed) in timed {
        experiment_timings.push((result.id.clone(), elapsed));
        results.push(result);
    }
    let summary = RunSummary {
        jobs,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        cache_evictions: cache.evictions(),
        unique_runs: cache.unique_runs(),
        run_timings: cache
            .timings()
            .into_iter()
            .map(|t| (t.key.label(), t.elapsed))
            .collect(),
        experiment_timings,
        warm_wall,
        experiments_wall,
        wall: start.elapsed(),
    };
    HarnessReport { results, summary }
}

/// Run every experiment on the default-size pool and return the results in
/// presentation order.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<ExperimentResult> {
    run_ids_pooled(experiments::ALL_IDS, cfg, default_jobs()).results
}

/// Write every result as JSON into `dir` (one file per experiment id) and
/// return the file paths.
pub fn export_json(
    results: &[ExperimentResult],
    dir: &Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for r in results {
        let path = dir.join(format!("{}.json", r.id));
        let mut f = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(r).expect("results serialize");
        f.write_all(json.as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("zzz", &ExperimentConfig::quick()).is_none());
    }

    #[test]
    fn config_max_dim() {
        let cfg = ExperimentConfig::quick();
        assert_eq!(cfg.fast_max_dim(), 10);
    }

    #[test]
    fn max_dim_validation_bounds() {
        assert!(validate_max_dim(0).is_err());
        assert!(validate_max_dim(0).unwrap_err().contains("at least 1"));
        assert_eq!(validate_max_dim(1), Ok(1));
        assert_eq!(validate_max_dim(REPORT_MAX_DIM), Ok(REPORT_MAX_DIM));
        let over = validate_max_dim(REPORT_MAX_DIM + 1).unwrap_err();
        assert!(over.contains("exceeds"), "{over}");
        assert!(over.contains("20"), "{over}");
    }

    #[test]
    fn cache_cap_validation_bounds() {
        let err = validate_cache_cap(0).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(err.contains("--cache-cap"), "{err}");
        assert_eq!(validate_cache_cap(1), Ok(1));
        assert_eq!(validate_cache_cap(256), Ok(256));
    }

    #[test]
    fn instrumented_run_records_phases_and_experiments() {
        let mut cfg = ExperimentConfig::quick();
        cfg.fast_dims = (1..=5).collect();
        cfg.engine_dims = vec![2];
        cfg.sync_engine_dims = vec![2];
        cfg.adversary_seeds = 1;
        let registry = MetricsRegistry::new();
        let report = run_ids_pooled_with(&["t2", "t3"], &cfg, 2, None, &registry);
        assert_eq!(report.results.len(), 2);

        let snap = registry.snapshot();
        assert_eq!(snap.histogram("span.report_us").map(|h| h.count), Some(1));
        assert_eq!(
            snap.histogram("span.report.warm_us").map(|h| h.count),
            Some(1)
        );
        assert_eq!(
            snap.histogram("span.report.experiments_us")
                .map(|h| h.count),
            Some(1)
        );
        for id in ["t2", "t3"] {
            assert_eq!(
                snap.histogram(&format!("experiment.{id}_us"))
                    .map(|h| h.count),
                Some(1),
                "missing experiment series for {id}"
            );
        }
        // The shared cache reported into the same registry, and the pool
        // counted every warm + experiment job.
        assert_eq!(
            snap.counter("cache.misses"),
            Some(report.summary.cache_misses)
        );
        assert_eq!(snap.counter("cache.hits"), Some(report.summary.cache_hits));
        let pool_jobs = snap.counter("pool.jobs").unwrap_or(0);
        assert!(
            pool_jobs >= report.summary.cache_misses + 2,
            "pool.jobs = {pool_jobs} must cover warm jobs plus 2 experiments"
        );
        // Phase walls are recorded and consistent with the total.
        assert!(report.summary.warm_wall + report.summary.experiments_wall <= report.summary.wall);
    }

    #[test]
    fn capped_cache_surfaces_evictions_in_summary() {
        let mut cfg = ExperimentConfig::quick();
        cfg.fast_dims = (1..=6).collect();
        cfg.engine_dims = vec![2, 3];
        cfg.sync_engine_dims = vec![2, 3];
        cfg.adversary_seeds = 1;
        let capped = run_ids_pooled_capped(&["t2", "t3"], &cfg, 1, Some(2));
        assert!(
            capped.summary.cache_evictions > 0,
            "a 2-entry cap over t2+t3 must evict"
        );
        assert!(capped.summary.render().contains("evicted"));
        // Results are unaffected by eviction: identical to the unbounded run.
        let unbounded = run_ids_pooled(&["t2", "t3"], &cfg, 1);
        assert_eq!(unbounded.summary.cache_evictions, 0);
        for (a, b) in capped.results.iter().zip(&unbounded.results) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "experiment {} differs under a capped cache",
                a.id
            );
        }
    }

    #[test]
    fn export_writes_one_file_per_result() {
        let results = vec![
            ExperimentResult::new("x1", "a", "c"),
            ExperimentResult::new("x2", "b", "c"),
        ];
        let dir = std::env::temp_dir().join("hypersweep-export-test");
        let paths = export_json(&results, &dir).unwrap();
        assert_eq!(paths.len(), 2);
        for p in paths {
            assert!(p.exists());
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn pooled_run_shares_duplicated_runs() {
        let mut cfg = ExperimentConfig::quick();
        cfg.fast_dims = (1..=6).collect();
        cfg.engine_dims = vec![2, 3];
        cfg.sync_engine_dims = vec![2, 3];
        cfg.adversary_seeds = 1;
        // t2, t3 and e13 all need CLEAN's fast trace and t2/t3 share the
        // FIFO engine runs: the warm phase must execute each once and the
        // experiments must then hit.
        let report = run_ids_pooled(&["t2", "t3", "e13"], &cfg, 2);
        assert_eq!(report.results.len(), 3);
        assert_eq!(report.results[0].id, "t2");
        assert!(
            report.summary.cache_hits > report.summary.cache_misses,
            "duplicated runs were not shared: {} hits / {} misses",
            report.summary.cache_hits,
            report.summary.cache_misses
        );
        assert_eq!(
            report.summary.unique_runs as u64,
            report.summary.cache_misses
        );
        let line = report.summary.render();
        assert!(line.contains("2 jobs"), "{line}");
        assert!(line.contains("hits"), "{line}");
    }
}
