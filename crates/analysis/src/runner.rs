//! Experiment configuration, dispatch, and parallel execution.

use std::io::Write as _;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::experiments;
use crate::result::ExperimentResult;

/// How large and how thorough an experiment run should be.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Dimensions evaluated through the fast (procedural) paths.
    pub fast_dims: Vec<u32>,
    /// Dimensions additionally executed on the discrete-event engine under
    /// asynchronous adversaries.
    pub engine_dims: Vec<u32>,
    /// Dimensions executed under the synchronous schedule for ideal-time
    /// measurements (Algorithm CLEAN is sequential, so these stay small).
    pub sync_engine_dims: Vec<u32>,
    /// Number of random-adversary seeds per configuration.
    pub adversary_seeds: u64,
    /// Dimension used for the structural figures (the paper draws `H_6`).
    pub figure_dim: u32,
    /// Dimension used for the order/wavefront figures (the paper draws
    /// `H_4`).
    pub small_figure_dim: u32,
}

impl ExperimentConfig {
    /// Small and fast: suitable for CI and unit tests (seconds).
    pub fn quick() -> Self {
        ExperimentConfig {
            fast_dims: (1..=10).collect(),
            engine_dims: vec![2, 4, 6],
            sync_engine_dims: vec![2, 4, 6],
            adversary_seeds: 2,
            figure_dim: 6,
            small_figure_dim: 4,
        }
    }

    /// The full runs recorded in `EXPERIMENTS.md` (tens of seconds).
    pub fn full() -> Self {
        ExperimentConfig {
            fast_dims: (1..=14).collect(),
            engine_dims: vec![2, 3, 4, 5, 6, 7, 8],
            sync_engine_dims: vec![2, 4, 6, 8],
            adversary_seeds: 5,
            figure_dim: 6,
            small_figure_dim: 4,
        }
    }

    /// Largest fast dimension.
    pub fn fast_max_dim(&self) -> u32 {
        self.fast_dims.iter().copied().max().unwrap_or(1)
    }
}

/// Run one experiment by id; `None` for an unknown id.
pub fn run_experiment(id: &str, cfg: &ExperimentConfig) -> Option<ExperimentResult> {
    Some(match id {
        "f1" => experiments::f1_broadcast_tree(cfg),
        "f2" => experiments::f2_clean_order(cfg),
        "f3" => experiments::f3_msb_classes(cfg),
        "f4" => experiments::f4_visibility_wavefront(cfg),
        "t2" => experiments::t2_clean_agents(cfg),
        "t3" => experiments::t3_clean_moves(cfg),
        "t4" => experiments::t4_clean_time(cfg),
        "t5" => experiments::t5_visibility_agents(cfg),
        "t6" => experiments::t6_monotonicity(cfg),
        "t7" => experiments::t7_visibility_time(cfg),
        "t8" => experiments::t8_visibility_moves(cfg),
        "t9" => experiments::t9_cloning(cfg),
        "t10" => experiments::t10_synchronous_variant(cfg),
        "e11" => experiments::e11_strategy_comparison(cfg),
        "e12" => experiments::e12_baselines(cfg),
        "e13" => experiments::e13_ablations(cfg),
        "e14" => experiments::e14_open_problem(cfg),
        "e15" => experiments::e15_capture_dynamics(cfg),
        "e16" => experiments::e16_network_survey(cfg),
        _ => return None,
    })
}

/// Run every experiment, in parallel across experiments (each experiment is
/// itself sequential), and return them in presentation order.
pub fn run_all(cfg: &ExperimentConfig) -> Vec<ExperimentResult> {
    let ids = experiments::ALL_IDS;
    let mut slots: Vec<Option<ExperimentResult>> = Vec::new();
    slots.resize_with(ids.len(), || None);
    let slots_mutex = std::sync::Mutex::new(&mut slots);
    crossbeam::thread::scope(|scope| {
        for (i, id) in ids.iter().enumerate() {
            let slots_ref = &slots_mutex;
            scope.spawn(move |_| {
                let result = run_experiment(id, cfg).expect("known id");
                slots_ref.lock().unwrap()[i] = Some(result);
            });
        }
    })
    .expect("experiment threads do not panic");
    slots.into_iter().map(|r| r.expect("all ran")).collect()
}

/// Write every result as JSON into `dir` (one file per experiment id) and
/// return the file paths.
pub fn export_json(
    results: &[ExperimentResult],
    dir: &Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for r in results {
        let path = dir.join(format!("{}.json", r.id));
        let mut f = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(r).expect("results serialize");
        f.write_all(json.as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("zzz", &ExperimentConfig::quick()).is_none());
    }

    #[test]
    fn config_max_dim() {
        let cfg = ExperimentConfig::quick();
        assert_eq!(cfg.fast_max_dim(), 10);
    }

    #[test]
    fn export_writes_one_file_per_result() {
        let results = vec![
            ExperimentResult::new("x1", "a", "c"),
            ExperimentResult::new("x2", "b", "c"),
        ];
        let dir = std::env::temp_dir().join("hypersweep-export-test");
        let paths = export_json(&results, &dir).unwrap();
        assert_eq!(paths.len(), 2);
        for p in paths {
            assert!(p.exists());
            std::fs::remove_file(p).ok();
        }
    }
}
