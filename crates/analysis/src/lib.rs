//! Experiment harness: regenerates every table and figure of the paper.
//!
//! The paper is theoretical, so its "evaluation" is its theorems
//! (Theorems 2–8, Lemmas 3–4, Properties 1–8) and four structural figures.
//! Each becomes a regenerable artifact here — see `DESIGN.md` §3 for the
//! full experiment index (F1–F4 for the figures, T2–T10 for the theorems,
//! E11–E12 for the comparative experiments the introduction motivates).
//!
//! Every experiment returns an [`ExperimentResult`] holding
//! measured-vs-predicted [`table::Table`]s and figure-shaped
//! [`series::Series`]; the CLI renders them as text and the whole set
//! exports to JSON for archival (`EXPERIMENTS.md` records the outputs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checking;
pub mod experiments;
pub mod persist;
pub mod pool;
pub mod result;
pub mod runner;
pub mod series;
pub mod sharded;
pub mod stats;
pub mod table;

pub use cache::{execute_run, Exec, InsertListener, RunCache, RunKey, StrategyKind};
pub use checking::{
    campaign_table, run_campaign, validate_campaign_size, validate_stride, CampaignOutcome,
    CheckCampaign, MAX_CAMPAIGN_SCHEDULES, MAX_CHECK_STRIDE,
};
pub use persist::{CacheStore, PersistAppender, WarmLoadStats};
pub use pool::{
    default_jobs, execute_jobs, execute_jobs_metered, execute_schedule_stream, PoolSaturated,
    StreamCutoff, WorkerPool,
};
pub use result::ExperimentResult;
pub use runner::{
    run_all, run_experiment, run_ids_pooled, run_ids_pooled_capped, run_ids_pooled_with,
    validate_cache_cap, validate_max_dim, ExperimentConfig, HarnessReport, RunSummary,
    REPORT_MAX_DIM,
};
pub use series::Series;
pub use sharded::{validate_cache_shards, ShardStats, ShardedRunCache, MAX_CACHE_SHARDS};
pub use table::Table;
