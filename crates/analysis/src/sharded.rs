//! Hash-sharded run cache: N independent [`RunCache`] shards behind one
//! facade, partitioned on the full [`RunKey`] `(strategy, dim, exec)`.
//!
//! The single-mutex [`RunCache`] serializes every lookup; under a
//! many-connection daemon the cache lock becomes the front-door
//! bottleneck long before the kernel does. Sharding hash-partitions keys
//! across independent caches so concurrent audits of different
//! configurations never contend on one lock, while each shard keeps the
//! full `RunCache` machinery (in-flight dedup, LRU eviction, panic-safe
//! waiters) for the keys it owns.
//!
//! All shards built by the telemetry constructors share one registry, so
//! the aggregate `cache.hits` / `cache.misses` / `cache.evictions`
//! counters and the `cache.entries` gauge (maintained by deltas) keep
//! their exact pre-sharding meaning; each shard additionally counts its
//! own `cache.shard<i>.requests` series so skew is observable.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

use hypersweep_core::SearchOutcome;
use hypersweep_telemetry::{Counter, MetricsRegistry};

use crate::cache::{execute_run, InsertListener, JobTiming, RunCache, RunKey};

/// Largest accepted shard count; beyond this the per-shard capacity slices
/// get too thin to be useful and the poll set bookkeeping dominates.
pub const MAX_CACHE_SHARDS: usize = 64;

/// Validate a `--cache-shards` request: `1..=MAX_CACHE_SHARDS`. Returns
/// the count unchanged, or a message naming the valid range.
pub fn validate_cache_shards(shards: usize) -> Result<usize, String> {
    if shards == 0 {
        Err(format!(
            "--cache-shards 0 would leave no shard to serve from; \
             valid range is 1..={MAX_CACHE_SHARDS}"
        ))
    } else if shards > MAX_CACHE_SHARDS {
        Err(format!(
            "--cache-shards {shards} exceeds the supported limit {MAX_CACHE_SHARDS}; \
             valid range is 1..={MAX_CACHE_SHARDS}"
        ))
    } else {
        Ok(shards)
    }
}

/// One shard's live accounting, for skew reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests routed to this shard since startup.
    pub requests: u64,
    /// Outcomes currently resident in this shard.
    pub entries: u64,
    /// This shard's LRU bound (`None` = unbounded).
    pub capacity: Option<u64>,
}

/// N hash-partitioned [`RunCache`] shards behind the [`RunCache`]-shaped
/// API the dispatcher uses.
pub struct ShardedRunCache {
    shards: Vec<Arc<RunCache>>,
    /// Per-shard `cache.shard<i>.requests` counters, resolved in each
    /// shard's own registry.
    requests: Vec<Counter>,
}

impl ShardedRunCache {
    /// `shards` caches backed by [`execute_run`], splitting `capacity`
    /// across them, all accounting into `registry` (one shared set of
    /// aggregate `cache.*` cells).
    pub fn with_capacity_and_telemetry(
        shards: usize,
        capacity: Option<usize>,
        registry: &MetricsRegistry,
    ) -> Self {
        Self::with_runner_capacity_and_telemetry(shards, execute_run, capacity, registry)
    }

    /// Like [`ShardedRunCache::with_capacity_and_telemetry`] with a custom
    /// runner shared by every shard (tests inject gated or counting
    /// runners this way).
    pub fn with_runner_capacity_and_telemetry(
        shards: usize,
        runner: impl Fn(RunKey) -> SearchOutcome + Send + Sync + 'static,
        capacity: Option<usize>,
        registry: &MetricsRegistry,
    ) -> Self {
        let shards = shards.clamp(1, MAX_CACHE_SHARDS);
        let runner = Arc::new(runner);
        let caches = (0..shards)
            .map(|i| {
                let runner = Arc::clone(&runner);
                let cache = RunCache::with_runner_and_telemetry(move |key| runner(key), registry);
                cache.set_capacity(shard_capacity(capacity, shards, i));
                Arc::new(cache)
            })
            .collect();
        Self::from_caches(caches)
    }

    /// Wrap pre-built caches as shards (a single-element vector adapts a
    /// caller-owned [`RunCache`] unchanged — the test-injection path).
    ///
    /// # Panics
    ///
    /// Panics on an empty vector: a cache with zero shards cannot serve.
    pub fn from_caches(caches: Vec<Arc<RunCache>>) -> Self {
        assert!(
            !caches.is_empty(),
            "a sharded cache needs at least one shard"
        );
        let requests = caches
            .iter()
            .enumerate()
            .map(|(i, cache)| {
                cache
                    .registry()
                    .counter(&format!("cache.shard{i}.requests"))
            })
            .collect();
        ShardedRunCache {
            shards: caches,
            requests,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `key`. Stable for the life of the process (the
    /// hash has fixed keys), so repeated requests always land on the same
    /// shard.
    pub fn shard_index(&self, key: &RunKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// The outcome for `key`, executed exactly once per shard across all
    /// callers (the shard owning the key dedupes concurrent requesters).
    pub fn get_or_run(&self, key: RunKey) -> Arc<SearchOutcome> {
        let idx = self.shard_index(&key);
        self.requests[idx].inc();
        self.shards[idx].get_or_run(key)
    }

    /// Insert an already-computed outcome for `key` into its owning shard
    /// without counting a miss or firing insert listeners — the warm-load
    /// path. Returns `false` if the key is already present.
    pub fn insert_ready(&self, key: RunKey, outcome: SearchOutcome) -> bool {
        self.shards[self.shard_index(&key)].insert_ready(key, outcome)
    }

    /// Observe every computed insert on every shard (see
    /// [`InsertListener`]); the persistence appender hangs off this.
    pub fn set_insert_listener(&self, listener: InsertListener) {
        for shard in &self.shards {
            shard.set_insert_listener(Arc::clone(&listener));
        }
    }

    /// Every computed entry across all shards, unordered. Touches no LRU
    /// state.
    pub fn entries_snapshot(&self) -> Vec<(RunKey, Arc<SearchOutcome>)> {
        self.shards
            .iter()
            .flat_map(|s| s.entries_snapshot())
            .collect()
    }

    /// Shards whose registries are distinct, for aggregate counter reads:
    /// shards sharing one registry share the very same counter cells, so
    /// summing over every shard would multiply the aggregates.
    fn accounting_shards(&self) -> Vec<&Arc<RunCache>> {
        let mut reps: Vec<&Arc<RunCache>> = Vec::new();
        for shard in &self.shards {
            if !reps
                .iter()
                .any(|rep| rep.registry().ptr_eq(shard.registry()))
            {
                reps.push(shard);
            }
        }
        reps
    }

    /// The distinct registries the shards account into (one, unless
    /// caller-provided caches brought their own).
    pub fn registries(&self) -> Vec<&MetricsRegistry> {
        self.accounting_shards()
            .into_iter()
            .map(|shard| shard.registry())
            .collect()
    }

    /// Aggregate cache hits across all shards.
    pub fn hits(&self) -> u64 {
        self.accounting_shards().iter().map(|s| s.hits()).sum()
    }

    /// Aggregate cache misses across all shards.
    pub fn misses(&self) -> u64 {
        self.accounting_shards().iter().map(|s| s.misses()).sum()
    }

    /// Aggregate LRU evictions across all shards.
    pub fn evictions(&self) -> u64 {
        self.accounting_shards().iter().map(|s| s.evictions()).sum()
    }

    /// Computed outcomes currently held, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no shard holds a computed outcome.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Total capacity bound: the per-shard sum, or `None` if any shard is
    /// unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.shards
            .iter()
            .map(|s| s.capacity())
            .sum::<Option<usize>>()
    }

    /// Re-split a total capacity bound across the shards (shrinking evicts
    /// immediately, per shard).
    pub fn set_capacity(&self, capacity: Option<usize>) {
        let n = self.shards.len();
        for (i, shard) in self.shards.iter().enumerate() {
            shard.set_capacity(shard_capacity(capacity, n, i));
        }
    }

    /// Per-shard accounting, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .zip(&self.requests)
            .map(|(shard, requests)| ShardStats {
                requests: requests.get(),
                entries: shard.len() as u64,
                capacity: shard.capacity().map(|c| c as u64),
            })
            .collect()
    }

    /// Number of distinct runs executed so far, summed over shards
    /// (bounded on long-running daemons, like [`RunCache::unique_runs`]).
    pub fn unique_runs(&self) -> usize {
        self.shards.iter().map(|s| s.unique_runs()).sum()
    }

    /// Wall-clock records of executed runs across all shards, slowest
    /// first.
    pub fn timings(&self) -> Vec<JobTiming> {
        let mut all: Vec<JobTiming> = self.shards.iter().flat_map(|s| s.timings()).collect();
        all.sort_by_key(|timing| std::cmp::Reverse(timing.elapsed));
        all
    }

    /// Total time spent executing runs (sum of retained records).
    pub fn total_run_time(&self) -> Duration {
        self.shards.iter().map(|s| s.total_run_time()).sum()
    }
}

/// Shard `i`'s slice of a total capacity: `total / n` plus one of the
/// remainder. A total below the shard count leaves the tail shards at
/// capacity zero (they still dedupe in-flight runs, they just retain
/// nothing) — callers wanting retention everywhere should keep
/// `capacity >= shards`.
fn shard_capacity(total: Option<usize>, shards: usize, i: usize) -> Option<usize> {
    total.map(|c| c / shards + usize::from(i < c % shards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::StrategyKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn dummy_outcome() -> SearchOutcome {
        execute_run(RunKey::fast(StrategyKind::Clean, 1))
    }

    fn sharded(shards: usize, capacity: Option<usize>) -> ShardedRunCache {
        ShardedRunCache::with_runner_capacity_and_telemetry(
            shards,
            |_| dummy_outcome(),
            capacity,
            &MetricsRegistry::new(),
        )
    }

    /// Keys of one strategy across many dims, a representative request mix.
    fn keys(n: u32) -> Vec<RunKey> {
        (1..=n)
            .flat_map(|d| {
                [
                    RunKey::fast(StrategyKind::Clean, d),
                    RunKey::audited(StrategyKind::Visibility, d),
                    RunKey::audited(StrategyKind::Cloning, d),
                ]
            })
            .collect()
    }

    #[test]
    fn shard_count_validation_bounds() {
        assert!(validate_cache_shards(0).is_err());
        assert_eq!(validate_cache_shards(1), Ok(1));
        assert_eq!(
            validate_cache_shards(MAX_CACHE_SHARDS),
            Ok(MAX_CACHE_SHARDS)
        );
        assert!(validate_cache_shards(MAX_CACHE_SHARDS + 1).is_err());
    }

    #[test]
    fn keys_spread_across_shards_and_routing_is_stable() {
        let cache = sharded(8, None);
        let keys = keys(20);
        let mut seen = vec![0usize; cache.shard_count()];
        for key in &keys {
            let idx = cache.shard_index(key);
            assert_eq!(idx, cache.shard_index(key), "routing must be stable");
            seen[idx] += 1;
        }
        let populated = seen.iter().filter(|&&c| c > 0).count();
        assert!(
            populated >= cache.shard_count() / 2,
            "60 keys landed on only {populated}/8 shards: {seen:?}"
        );
    }

    #[test]
    fn aggregate_accounting_matches_single_cache_semantics() {
        let registry = MetricsRegistry::new();
        let cache = ShardedRunCache::with_runner_capacity_and_telemetry(
            4,
            |_| dummy_outcome(),
            None,
            &registry,
        );
        let keys = keys(10);
        for key in &keys {
            cache.get_or_run(*key);
        }
        for key in &keys {
            cache.get_or_run(*key);
        }
        assert_eq!(cache.misses(), keys.len() as u64);
        assert_eq!(cache.hits(), keys.len() as u64);
        assert_eq!(cache.len(), keys.len());
        assert_eq!(cache.unique_runs(), keys.len());
        // The shared registry's cells hold the aggregates directly (this is
        // what keeps the daemon's `cache.*` series meaningful), and the
        // delta-maintained entries gauge agrees with `len()`.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("cache.misses"), Some(keys.len() as u64));
        assert_eq!(snap.counter("cache.hits"), Some(keys.len() as u64));
        assert_eq!(snap.gauge("cache.entries"), Some(keys.len() as i64));
        // Per-shard request counters cover every request exactly once.
        let stats = cache.shard_stats();
        assert_eq!(
            stats.iter().map(|s| s.requests).sum::<u64>(),
            2 * keys.len() as u64
        );
        assert_eq!(
            stats.iter().map(|s| s.entries).sum::<u64>(),
            keys.len() as u64
        );
    }

    #[test]
    fn eviction_is_per_shard_lru() {
        let cache = sharded(2, Some(2));
        // Find three keys owned by the same shard, so its 1-entry slice
        // (2 total / 2 shards) must evict.
        let owned: Vec<RunKey> = keys(20)
            .into_iter()
            .filter(|k| cache.shard_index(k) == 0)
            .take(3)
            .collect();
        assert_eq!(owned.len(), 3, "need three keys on shard 0");
        assert_eq!(cache.capacity(), Some(2));
        for key in &owned {
            cache.get_or_run(*key);
        }
        // Shard 0 holds one entry; the other shard was never touched.
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.shard_stats()[0].entries, 1);
        assert_eq!(cache.shard_stats()[1].entries, 0);
        // The survivor is the most recently used key.
        cache.get_or_run(owned[2]);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn capacity_resplits_across_shards() {
        let cache = sharded(3, Some(7));
        let caps: Vec<_> = cache.shard_stats().iter().map(|s| s.capacity).collect();
        assert_eq!(caps, vec![Some(3), Some(2), Some(2)]);
        cache.set_capacity(None);
        assert_eq!(cache.capacity(), None);
        cache.set_capacity(Some(3));
        assert_eq!(cache.capacity(), Some(3));
    }

    #[test]
    fn single_shard_wraps_a_caller_cache_unchanged() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let inner = Arc::new(RunCache::with_runner(|_| {
            RUNS.fetch_add(1, Ordering::SeqCst);
            dummy_outcome()
        }));
        let cache = ShardedRunCache::from_caches(vec![Arc::clone(&inner)]);
        let key = RunKey::audited(StrategyKind::Clean, 3);
        cache.get_or_run(key);
        cache.get_or_run(key);
        assert_eq!(RUNS.load(Ordering::SeqCst), 1);
        assert_eq!(cache.shard_count(), 1);
        assert_eq!(cache.shard_index(&key), 0);
        // The facade reads the inner cache's accounting directly.
        assert_eq!((cache.hits(), inner.hits()), (1, 1));
        assert_eq!((cache.misses(), inner.misses()), (1, 1));
        assert_eq!(cache.registries().len(), 1);
        assert!(cache.registries()[0].ptr_eq(inner.registry()));
    }

    #[test]
    fn distinct_registries_sum_while_shared_ones_do_not_double_count() {
        // Two caller-built shards with separate registries: aggregates sum.
        let a = Arc::new(RunCache::with_runner(|_| dummy_outcome()));
        let b = Arc::new(RunCache::with_runner(|_| dummy_outcome()));
        let cache = ShardedRunCache::from_caches(vec![a, b]);
        let keys = keys(12);
        for key in &keys {
            cache.get_or_run(*key);
            cache.get_or_run(*key);
        }
        assert_eq!(cache.misses(), keys.len() as u64);
        assert_eq!(cache.hits(), keys.len() as u64);
        assert_eq!(cache.registries().len(), 2);

        // Four shards over one registry: the same totals, not 4x.
        let shared = sharded(4, None);
        for key in &keys {
            shared.get_or_run(*key);
            shared.get_or_run(*key);
        }
        assert_eq!(shared.misses(), keys.len() as u64);
        assert_eq!(shared.hits(), keys.len() as u64);
        assert_eq!(shared.registries().len(), 1);
    }

    #[test]
    fn warm_inserts_route_to_owning_shards_and_listener_fans_out() {
        use std::sync::Mutex;
        let cache = sharded(4, None);
        let seen = Arc::new(Mutex::new(Vec::<RunKey>::new()));
        let sink = Arc::clone(&seen);
        cache.set_insert_listener(Arc::new(move |key, _| {
            sink.lock().unwrap().push(key);
        }));
        // Warm inserts land on the owning shard and never fire the listener.
        let warm = keys(6);
        for key in &warm {
            assert!(cache.insert_ready(*key, dummy_outcome()));
            assert!(cache.shard_stats()[cache.shard_index(key)].entries > 0);
        }
        assert!(seen.lock().unwrap().is_empty());
        assert_eq!(cache.len(), warm.len());
        // Warm entries serve as hits; a fresh key computes and fires.
        cache.get_or_run(warm[0]);
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
        let fresh = RunKey::fast(StrategyKind::Synchronous, 9);
        cache.get_or_run(fresh);
        assert_eq!(seen.lock().unwrap().as_slice(), [fresh]);
        // The snapshot covers every shard.
        assert_eq!(cache.entries_snapshot().len(), warm.len() + 1);
    }

    #[test]
    fn concurrent_mixed_shard_traffic_dedupes_per_key() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let cache = Arc::new(ShardedRunCache::with_runner_capacity_and_telemetry(
            8,
            |_| {
                RUNS.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                dummy_outcome()
            },
            None,
            &MetricsRegistry::new(),
        ));
        let keys = keys(8);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let cache = Arc::clone(&cache);
                let keys = keys.clone();
                scope.spawn(move || {
                    for key in &keys {
                        cache.get_or_run(*key);
                    }
                });
            }
        });
        assert_eq!(
            RUNS.load(Ordering::SeqCst),
            keys.len(),
            "each unique key must execute exactly once across shards"
        );
        assert_eq!(cache.misses(), keys.len() as u64);
        assert_eq!(cache.hits(), 5 * keys.len() as u64);
    }
}
