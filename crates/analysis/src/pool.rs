//! A fixed-size work-stealing pool for harness jobs.
//!
//! The previous harness spawned one OS thread per experiment, which both
//! oversubscribed small machines and offered no way to bound parallelism.
//! [`execute_jobs`] instead runs an arbitrary batch of closures on exactly
//! `workers` threads: each worker owns a deque seeded round-robin, drains it
//! front-to-back, and steals from the back of its siblings' deques when its
//! own runs dry. Results come back **in submission order** regardless of
//! which worker ran what — the property the runner relies on to keep
//! exported JSON byte-identical across `--jobs` settings.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run every job on a pool of `workers` threads and return their results in
/// submission order. Panics in a job propagate to the caller.
pub fn execute_jobs<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(total);
    if workers == 1 {
        // No threads needed; run inline in order.
        return jobs.into_iter().map(|job| job()).collect();
    }

    // Seed the deques round-robin so every worker starts with local work.
    let mut deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        deques[index % workers]
            .get_mut()
            .unwrap()
            .push_back((index, job));
    }
    let deques = &deques;

    let (sender, receiver) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let sender = sender.clone();
            scope.spawn(move || {
                loop {
                    // Own work first (front), then steal (back) walking the
                    // other deques starting after ours.
                    let mut next = deques[me].lock().unwrap().pop_front();
                    if next.is_none() {
                        for offset in 1..workers {
                            let victim = (me + offset) % workers;
                            next = deques[victim].lock().unwrap().pop_back();
                            if next.is_some() {
                                break;
                            }
                        }
                    }
                    match next {
                        Some((index, job)) => {
                            let result = job();
                            // The receiver outlives the scope; a send can
                            // only fail if the main thread is unwinding.
                            let _ = sender.send((index, result));
                        }
                        None => return,
                    }
                }
            });
        }
        drop(sender);
    });

    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let mut received = 0;
    while let Ok((index, result)) = receiver.recv() {
        assert!(slots[index].is_none(), "job {index} completed twice");
        slots[index] = Some(result);
        received += 1;
    }
    assert_eq!(received, total, "pool lost results");
    slots
        .into_iter()
        .map(|slot| slot.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 4, 8] {
            let jobs: Vec<_> = (0..50)
                .map(|i| {
                    move || {
                        // Stagger so completion order differs from
                        // submission order.
                        if i % 7 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        i * 10
                    }
                })
                .collect();
            let results = execute_jobs(jobs, workers);
            assert_eq!(results, (0..50).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bounded_concurrency() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..32)
            .map(|_| {
                || {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        execute_jobs(jobs, 3);
        assert!(
            PEAK.load(Ordering::SeqCst) <= 3,
            "more than 3 jobs ran at once"
        );
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(execute_jobs(none, 4).is_empty());
        assert_eq!(execute_jobs(vec![|| 7], 4), vec![7]);
    }

    #[test]
    fn stealing_drains_uneven_queues() {
        // One deque gets all the slow jobs (round-robin seeding then a
        // worker count that doesn't divide the job count would still spread
        // them, so force the imbalance through job durations instead): the
        // fast workers must steal the stragglers for this to finish quickly.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = if i % 4 == 0 {
                    Box::new(move || {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        i
                    })
                } else {
                    Box::new(move || i)
                };
                job
            })
            .collect();
        let results = execute_jobs(jobs, 4);
        assert_eq!(results, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
