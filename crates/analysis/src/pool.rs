//! A fixed-size work-stealing pool for harness jobs.
//!
//! The previous harness spawned one OS thread per experiment, which both
//! oversubscribed small machines and offered no way to bound parallelism.
//! [`execute_jobs`] instead runs an arbitrary batch of closures on exactly
//! `workers` threads: each worker owns a deque seeded round-robin, drains it
//! front-to-back, and steals from the back of its siblings' deques when its
//! own runs dry. Results come back **in submission order** regardless of
//! which worker ran what — the property the runner relies on to keep
//! exported JSON byte-identical across `--jobs` settings.
//!
//! Both the batch API and the persistent [`WorkerPool`] report into a
//! [`MetricsRegistry`]: queue depth and running jobs as gauges, completed
//! jobs / panics / steals as counters, and per-job wall time as the
//! `pool.job_us` histogram. The plain constructors use a disabled registry,
//! which costs one dead branch per event.
//!
//! Worker threads survive panicking jobs: the panic is caught at the job
//! boundary, counted (`pool.job_panics`, [`WorkerPool::failed_jobs`]), and
//! the worker moves on. Queue locks recover from poisoning, so a panic can
//! never wedge `try_submit`, `shutdown`, or `in_flight` — the failure mode
//! this replaced was a daemon that hung on drain after one bad job.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use hypersweep_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Lock that shrugs off poisoning: the pool's queue invariants hold at
/// every release point, so a panic elsewhere never invalidates the data —
/// propagating the poison would just turn one failed job into a wedged
/// pool.
fn recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run every job on a pool of `workers` threads and return their results in
/// submission order. Panics in a job propagate to the caller.
pub fn execute_jobs<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    execute_jobs_metered(jobs, workers, &MetricsRegistry::disabled())
}

/// [`execute_jobs`] with instrumentation: per-job wall time lands in the
/// `pool.job_us` histogram, completed jobs in `pool.jobs`, and cross-deque
/// steals in `pool.steals`.
pub fn execute_jobs_metered<T, F>(
    jobs: Vec<F>,
    workers: usize,
    registry: &MetricsRegistry,
) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let job_us = registry.histogram("pool.job_us");
    let jobs_counter = registry.counter("pool.jobs");
    let steals = registry.counter("pool.steals");

    let workers = workers.max(1).min(total);
    if workers == 1 {
        // No threads needed; run inline in order.
        return jobs
            .into_iter()
            .map(|job| {
                let started = Instant::now();
                let result = job();
                job_us.record_duration(started.elapsed());
                jobs_counter.inc();
                result
            })
            .collect();
    }

    // Seed the deques round-robin so every worker starts with local work.
    let mut deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        deques[index % workers]
            .get_mut()
            .unwrap()
            .push_back((index, job));
    }
    let deques = &deques;

    let (sender, receiver) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let sender = sender.clone();
            let job_us = job_us.clone();
            let jobs_counter = jobs_counter.clone();
            let steals = steals.clone();
            scope.spawn(move || {
                loop {
                    // Own work first (front), then steal (back) walking the
                    // other deques starting after ours.
                    let mut next = recover(&deques[me]).pop_front();
                    if next.is_none() {
                        for offset in 1..workers {
                            let victim = (me + offset) % workers;
                            next = recover(&deques[victim]).pop_back();
                            if next.is_some() {
                                steals.inc();
                                break;
                            }
                        }
                    }
                    match next {
                        Some((index, job)) => {
                            let started = Instant::now();
                            let result = job();
                            job_us.record_duration(started.elapsed());
                            jobs_counter.inc();
                            // The receiver outlives the scope; a send can
                            // only fail if the main thread is unwinding.
                            let _ = sender.send((index, result));
                        }
                        None => return,
                    }
                }
            });
        }
        drop(sender);
    });

    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let mut received = 0;
    while let Ok((index, result)) = receiver.recv() {
        assert!(slots[index].is_none(), "job {index} completed twice");
        slots[index] = Some(result);
        received += 1;
    }
    assert_eq!(received, total, "pool lost results");
    slots
        .into_iter()
        .map(|slot| slot.expect("every job completed"))
        .collect()
}

/// The shared early-exit bound of a streamed index range: the lowest
/// violating index any worker has found so far (`u64::MAX` until one is).
///
/// Workers skip whole slices, and break inside a slice, once every index
/// they would run exceeds the bound. The skip is **deterministic for the
/// winner**: the bound only ever holds indices of *actual* violations, so
/// it can never sink below the global minimum violating index `v*` — and
/// therefore `v*` itself can never be skipped. Quiet ranges (no violation
/// anywhere) never move the bound and are explored exhaustively, keeping
/// their aggregate counts independent of the worker count.
pub struct StreamCutoff(AtomicU64);

impl StreamCutoff {
    fn new() -> Self {
        StreamCutoff(AtomicU64::new(u64::MAX))
    }

    /// Record a violating index; the bound only decreases.
    pub fn record(&self, index: u64) {
        self.0.fetch_min(index, Ordering::SeqCst);
    }

    /// The current bound: no index above it needs to run.
    pub fn bound(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Stream the index range `0..total` through `workers` threads in
/// fixed-width slices claimed from a shared atomic counter — nothing is
/// materialized up front, so a 100k-schedule campaign enqueues **zero**
/// heap-allocated jobs regardless of its size.
///
/// Each worker builds one `S` via `init` (its reusable arena state, kept
/// across every slice it claims), then calls `run(&mut state, index)` for
/// each index. `run` returns `true` when the index *violated*; the
/// executor records it in the [`StreamCutoff`] and stops the slice. Slices
/// whose low end exceeds the cutoff are skipped whole (counted in
/// `{prefix}.slices_skipped`); claimed slices land in `{prefix}.slices`.
///
/// Determinism: the minimum violating index is always executed (see
/// [`StreamCutoff`]), so a caller that keeps its per-worker minimum and
/// merges by `min` reports the same winner for any `workers`. Aggregate
/// counts (indices run, work done) are deterministic exactly when the
/// range is quiet; with a violation present they depend on timing, which
/// is why campaign reports only promise the *winner*, not the tallies.
pub fn execute_schedule_stream<S, I, R>(
    total: u64,
    slice_width: u64,
    workers: usize,
    registry: &MetricsRegistry,
    prefix: &str,
    init: I,
    run: R,
) -> Vec<S>
where
    S: Send,
    I: Fn(usize) -> S + Sync,
    R: Fn(&mut S, u64) -> bool + Sync,
{
    let slice_width = slice_width.max(1);
    let slices_counter = registry.counter(&format!("{prefix}.slices"));
    let skipped_counter = registry.counter(&format!("{prefix}.slices_skipped"));
    let workers = workers.max(1).min(total.max(1) as usize);
    let next = AtomicU64::new(0);
    let cutoff = StreamCutoff::new();
    let (next, cutoff, init, run) = (&next, &cutoff, &init, &run);

    let worker_body = |me: usize| -> S {
        let mut state = init(me);
        loop {
            let slice = next.fetch_add(1, Ordering::SeqCst);
            let Some(lo) = slice.checked_mul(slice_width) else {
                break;
            };
            if lo >= total {
                break;
            }
            let hi = (lo + slice_width).min(total);
            if lo > cutoff.bound() {
                skipped_counter.inc();
                continue;
            }
            slices_counter.inc();
            for index in lo..hi {
                if index > cutoff.bound() {
                    break;
                }
                if run(&mut state, index) {
                    cutoff.record(index);
                    break;
                }
            }
        }
        state
    };

    if workers == 1 {
        return vec![worker_body(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| scope.spawn(move || worker_body(me)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream worker panicked"))
            .collect()
    })
}

/// The submission was rejected because the pool's queue is at capacity —
/// the caller should shed load (e.g. answer `busy`) instead of buffering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolSaturated;

impl std::fmt::Display for PoolSaturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool queue is at capacity")
    }
}

impl std::error::Error for PoolSaturated {}

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: VecDeque<PoolJob>,
    shutting_down: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    job_ready: Condvar,
    /// Maximum queued (not yet running) jobs — the backpressure bound.
    capacity: usize,
    /// Jobs currently executing on a worker.
    running: AtomicUsize,
    /// Jobs that panicked instead of completing (also `pool.job_panics`).
    failed: AtomicU64,
    metrics: PoolMetrics,
}

/// Handles resolved once at pool construction; all no-ops when the pool
/// was built without a registry.
struct PoolMetrics {
    queued: Gauge,
    running: Gauge,
    jobs: Counter,
    panics: Counter,
    job_us: Histogram,
}

impl PoolMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        PoolMetrics {
            queued: registry.gauge("pool.queued"),
            running: registry.gauge("pool.running"),
            jobs: registry.counter("pool.jobs"),
            panics: registry.counter("pool.job_panics"),
            job_us: registry.histogram("pool.job_us"),
        }
    }
}

/// A persistent, bounded sibling of [`execute_jobs`] for long-running
/// services: `workers` threads drain a shared queue of at most
/// `queue_capacity` pending jobs. [`WorkerPool::try_submit`] never blocks —
/// a full queue is reported to the caller as [`PoolSaturated`] so services
/// answer *busy* under overload instead of buffering unboundedly.
///
/// [`WorkerPool::shutdown`] drains: already-queued jobs still execute, the
/// workers then exit, and the call returns only once every worker thread
/// has been joined (no leaked threads). A job that panics is caught at the
/// job boundary and counted; it cannot take a worker down or poison the
/// queue against later submitters.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (at least one) serving a queue bounded at
    /// `queue_capacity` pending jobs, with telemetry disabled.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        WorkerPool::with_telemetry(workers, queue_capacity, &MetricsRegistry::disabled())
    }

    /// [`WorkerPool::new`] reporting into `registry`: `pool.queued` /
    /// `pool.running` gauges, `pool.jobs` / `pool.job_panics` counters,
    /// and the `pool.job_us` latency histogram.
    pub fn with_telemetry(
        workers: usize,
        queue_capacity: usize,
        registry: &MetricsRegistry,
    ) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            job_ready: Condvar::new(),
            capacity: queue_capacity.max(1),
            running: AtomicUsize::new(0),
            failed: AtomicU64::new(0),
            metrics: PoolMetrics::resolve(registry),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Worker threads serving the queue (0 once shut down).
    pub fn workers(&self) -> usize {
        recover(&self.handles).len()
    }

    /// Enqueue `job`, or refuse immediately if the queue is full or the
    /// pool is shutting down.
    pub fn try_submit<F>(&self, job: F) -> Result<(), PoolSaturated>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut queue = recover(&self.shared.queue);
        if queue.shutting_down || queue.jobs.len() >= self.shared.capacity {
            return Err(PoolSaturated);
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.metrics.queued.inc();
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Jobs queued or currently executing.
    pub fn in_flight(&self) -> usize {
        let queued = recover(&self.shared.queue).jobs.len();
        queued + self.shared.running.load(Ordering::SeqCst)
    }

    /// Jobs that panicked instead of completing, over the pool's lifetime.
    pub fn failed_jobs(&self) -> u64 {
        self.shared.failed.load(Ordering::SeqCst)
    }

    /// Stop accepting work, finish everything already queued, and join
    /// every worker thread. Idempotent; callable through a shared handle
    /// (e.g. an `Arc` a server shares with its connection threads).
    pub fn shutdown(&self) {
        {
            let mut queue = recover(&self.shared.queue);
            queue.shutting_down = true;
        }
        self.shared.job_ready.notify_all();
        let handles: Vec<_> = recover(&self.handles).drain(..).collect();
        for handle in handles {
            // Workers catch job panics, so join only fails if a worker
            // itself died abnormally; drain must still complete then.
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Pools dropped without an explicit drain still join their
        // workers; after an explicit `shutdown` this is a no-op.
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut queue = recover(&shared.queue);
    loop {
        if let Some(job) = queue.jobs.pop_front() {
            shared.running.fetch_add(1, Ordering::SeqCst);
            drop(queue);
            shared.metrics.queued.dec();
            shared.metrics.running.inc();
            // Counted at pickup, not completion: a job that replies to a
            // caller mid-execution (the server's reactor) must already be
            // visible in `pool.jobs` when that reply lands. Panicked jobs
            // stay included, exactly as when this counted completions.
            shared.metrics.jobs.inc();
            let started = Instant::now();
            // The job owns everything it captured, and the pool shares no
            // state with it beyond the (recovering) queue lock — catching
            // the unwind cannot observe broken invariants.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(job));
            shared.metrics.job_us.record_duration(started.elapsed());
            shared.metrics.running.dec();
            if outcome.is_err() {
                shared.failed.fetch_add(1, Ordering::SeqCst);
                shared.metrics.panics.inc();
            }
            shared.running.fetch_sub(1, Ordering::SeqCst);
            queue = recover(&shared.queue);
            continue;
        }
        if queue.shutting_down {
            return;
        }
        queue = shared
            .job_ready
            .wait(queue)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 4, 8] {
            let jobs: Vec<_> = (0..50)
                .map(|i| {
                    move || {
                        // Stagger so completion order differs from
                        // submission order.
                        if i % 7 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        i * 10
                    }
                })
                .collect();
            let results = execute_jobs(jobs, workers);
            assert_eq!(results, (0..50).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bounded_concurrency() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..32)
            .map(|_| {
                || {
                    let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK.fetch_max(live, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    LIVE.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        execute_jobs(jobs, 3);
        assert!(
            PEAK.load(Ordering::SeqCst) <= 3,
            "more than 3 jobs ran at once"
        );
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(execute_jobs(none, 4).is_empty());
        assert_eq!(execute_jobs(vec![|| 7], 4), vec![7]);
    }

    #[test]
    fn stealing_drains_uneven_queues() {
        // One deque gets all the slow jobs (round-robin seeding then a
        // worker count that doesn't divide the job count would still spread
        // them, so force the imbalance through job durations instead): the
        // fast workers must steal the stragglers for this to finish quickly.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = if i % 4 == 0 {
                    Box::new(move || {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        i
                    })
                } else {
                    Box::new(move || i)
                };
                job
            })
            .collect();
        let results = execute_jobs(jobs, 4);
        assert_eq!(results, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn metered_batch_reports_jobs_latency_and_steals() {
        let registry = MetricsRegistry::new();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = if i % 4 == 0 {
                    Box::new(move || {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        i
                    })
                } else {
                    Box::new(move || i)
                };
                job
            })
            .collect();
        let results = execute_jobs_metered(jobs, 4, &registry);
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.jobs"), Some(16));
        assert_eq!(snap.histogram("pool.job_us").map(|h| h.count), Some(16));
        assert!(
            snap.counter("pool.steals").unwrap_or(0) > 0,
            "the skewed durations must force at least one steal"
        );
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn worker_pool_runs_submitted_jobs() {
        static DONE: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(2, 64);
        for _ in 0..16 {
            pool.try_submit(|| {
                DONE.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(DONE.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn worker_pool_refuses_when_saturated() {
        use std::sync::mpsc::channel;
        let pool = WorkerPool::new(1, 1);
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        // Occupy the single worker...
        pool.try_submit(move || {
            gate.lock().unwrap().recv().ok();
        })
        .unwrap();
        // ...wait until it is actually running, so the queue is empty...
        while pool.shared.running.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // ...then fill the queue slot; the next submit must be refused.
        pool.try_submit(|| {}).unwrap();
        assert_eq!(pool.try_submit(|| {}), Err(PoolSaturated));
        assert_eq!(pool.in_flight(), 2);
        release.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_joins() {
        static DONE: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(1, 32);
        for _ in 0..8 {
            pool.try_submit(|| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                DONE.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(
            DONE.load(Ordering::SeqCst),
            8,
            "shutdown must drain, not drop, queued work"
        );
    }

    /// The satellite regression: a panicking job must not take down its
    /// worker, wedge later submissions, or hang `shutdown` — and it must
    /// show up in `failed_jobs` and `pool.job_panics`.
    #[test]
    fn panicking_job_does_not_wedge_the_pool() {
        static DONE: AtomicUsize = AtomicUsize::new(0);
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::with_telemetry(1, 32, &registry);

        pool.try_submit(|| panic!("job exploded (expected in this test)"))
            .unwrap();
        // The single worker just panicked a job; it must still serve these.
        for _ in 0..4 {
            pool.try_submit(|| {
                DONE.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();

        assert_eq!(DONE.load(Ordering::SeqCst), 4);
        assert_eq!(pool.failed_jobs(), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.job_panics"), Some(1));
        assert_eq!(snap.counter("pool.jobs"), Some(5));
        // Both gauges must have unwound to zero.
        assert_eq!(snap.gauge("pool.queued"), Some(0));
        assert_eq!(snap.gauge("pool.running"), Some(0));
    }

    /// `in_flight` and a second `try_submit` keep working while a panicked
    /// job is mid-unwind (the poisoned-lock recovery path).
    #[test]
    fn pool_survives_many_panics_under_contention() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::with_telemetry(4, 64, &registry);
        for i in 0..32 {
            let submitted = pool.try_submit(move || {
                if i % 3 == 0 {
                    panic!("scheduled failure {i}");
                }
            });
            assert!(submitted.is_ok(), "submission {i} was refused");
        }
        pool.shutdown();
        assert_eq!(pool.failed_jobs(), 11);
        assert_eq!(registry.snapshot().counter("pool.jobs"), Some(32));
        assert_eq!(pool.in_flight(), 0);
    }
}
