//! `hypersweep-daemon`: managed lifecycle for the serving daemon.
//!
//! The server crate knows how to *serve*; this crate knows how to *run it
//! as a service*: `start` detaches a `hypersweep serve` child into its own
//! session, the child publishes a [`DaemonState`] (`state.json`: PID,
//! bound address, socket path, start time, version) under a state
//! directory, and `status` / `stop` / `restart` operate on that record
//! with liveness probing — a recorded PID only counts as running if the
//! process is alive *and* its `/proc` cmdline still looks like a serve
//! daemon, so a PID recycled by an unrelated process reads as stale and
//! is cleaned up instead of signalled. `start --force` takes an already
//! running daemon over (graceful signal, bounded wait, then SIGKILL) and
//! reclaims its sockets. All lifecycle events, and the server's own
//! reactor/pool logs (via `hypersweep_telemetry::log_line`), land in a
//! timestamped size-rotated `daemon.log`.
//!
//! The design follows the workgraph service daemon (SNIPPETS.md
//! §Coordination): state file as the lock, stale-PID detection on every
//! touch, `--force` as the recovery hatch, and log rotation at a fixed
//! byte budget so an unattended daemon cannot fill the disk.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod lifecycle;
mod rotate;
mod state;
#[allow(unsafe_code)]
mod sys;

pub use lifecycle::{
    cleanup_stale, probe, restart, start, status, stop, DaemonPaths, Liveness, StartOptions,
    StatusOutcome, StopOutcome, DEFAULT_START_WAIT, DEFAULT_STOP_GRACE,
};
pub use rotate::{format_utc_ms, RotatingLog, DEFAULT_KEEP, DEFAULT_MAX_BYTES};
pub use state::{now_unix_ms, DaemonState};
pub use sys::{pid_alive, process_cmdline, send_signal, SIGINT, SIGKILL, SIGTERM};
