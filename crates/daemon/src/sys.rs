//! The three libc process primitives the lifecycle needs (`kill`,
//! `setsid`, `/proc` identity reads), kept in one `unsafe`-permitted
//! module so the rest of the crate stays `deny(unsafe_code)`.

use std::io;
use std::process::Command;

/// Interrupt (the server's graceful-drain signal from a terminal).
pub const SIGINT: i32 = 2;
/// Uncatchable kill, the takeover escalation of last resort.
pub const SIGKILL: i32 = 9;
/// Termination request; the server drains on it like SIGINT.
pub const SIGTERM: i32 = 15;

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
    fn setsid() -> i32;
}

/// Send `sig` to `pid`.
pub fn send_signal(pid: u32, sig: i32) -> io::Result<()> {
    let pid = i32::try_from(pid).map_err(|_| io::Error::from(io::ErrorKind::InvalidInput))?;
    // SAFETY: kill(2) with a validated positive pid; no memory is touched.
    if unsafe { kill(pid, sig) } == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Whether a process with `pid` exists (signal 0 probe). A process owned
/// by another user reads as alive (EPERM), which is the conservative
/// answer for takeover decisions.
pub fn pid_alive(pid: u32) -> bool {
    let Ok(pid) = i32::try_from(pid) else {
        return false;
    };
    if pid <= 0 {
        // 0 / negative address process groups; never probe those.
        return false;
    }
    // SAFETY: kill(2) with signal 0 only error-checks, it delivers nothing.
    if unsafe { kill(pid, 0) } == 0 {
        return true;
    }
    io::Error::last_os_error().kind() == io::ErrorKind::PermissionDenied
}

/// The process's command line (`/proc/<pid>/cmdline`, NUL separators
/// rendered as spaces), or `None` if unreadable (no such process, no
/// /proc, or no permission).
pub fn process_cmdline(pid: u32) -> Option<String> {
    let bytes = std::fs::read(format!("/proc/{pid}/cmdline")).ok()?;
    let joined = bytes
        .split(|&b| b == 0)
        .filter(|part| !part.is_empty())
        .map(|part| String::from_utf8_lossy(part).into_owned())
        .collect::<Vec<_>>()
        .join(" ");
    Some(joined)
}

/// Arrange for `cmd`'s child to start in a fresh session (`setsid`), so it
/// survives the spawning terminal and process group — the std-only stand-in
/// for the classic double-fork detach.
pub fn detach_into_new_session(cmd: &mut Command) {
    use std::os::unix::process::CommandExt;
    // SAFETY: the pre_exec closure runs in the forked child before exec and
    // calls only the async-signal-safe setsid(2); a failure (already a
    // session leader) is harmless, so the result is ignored.
    unsafe {
        cmd.pre_exec(|| {
            setsid();
            Ok(())
        });
    }
}
