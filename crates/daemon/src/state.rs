//! The daemon's `state.json`: one small record that *is* the lock.
//!
//! A running daemon is exactly "a state file whose PID probes alive and
//! still looks like a serve process". The file is written atomically
//! (temp + rename) by the serve child once its sockets are bound, so a
//! `daemon start` polling for readiness never observes a half-written
//! record, and removed by the child on graceful drain. Anything else —
//! missing file, dead PID, recycled PID, unparseable JSON — is *stale*
//! and gets cleaned up by the next lifecycle touch.

use std::fs;
use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// Milliseconds since the Unix epoch, for `started_unix_ms` stamps and
/// log timestamps.
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The published identity of a running daemon.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonState {
    /// The serve process.
    pub pid: u32,
    /// Bound TCP address, e.g. `127.0.0.1:7071` (the actual port, even if
    /// the daemon was started with `:0`).
    pub addr: String,
    /// Unix-domain socket path, if one is listening.
    pub uds: Option<String>,
    /// When the daemon started (Unix milliseconds).
    pub started_unix_ms: u64,
    /// The serving binary's version.
    pub version: String,
}

impl DaemonState {
    /// Read the state file. `Ok(None)` covers both "no file" and "file
    /// unparseable" — a corrupt record means a daemon that cannot be
    /// probed, which the lifecycle treats as stale, never as fatal.
    pub fn read(path: &Path) -> io::Result<Option<DaemonState>> {
        let contents = match fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Ok(serde_json::from_str(&contents).ok())
    }

    /// Write the state file atomically (temp + rename in the same
    /// directory), creating parent directories as needed.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("json.tmp");
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        fs::write(&tmp, json)?;
        fs::rename(&tmp, path)
    }

    /// Remove the state file; a missing file is fine.
    pub fn remove(path: &Path) -> io::Result<()> {
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "hypersweep-state-{name}-{}/state.json",
            std::process::id()
        ))
    }

    #[test]
    fn round_trips_through_disk() {
        let path = temp_path("round-trip");
        let state = DaemonState {
            pid: 4321,
            addr: "127.0.0.1:7071".to_string(),
            uds: Some("/tmp/hypersweep.sock".to_string()),
            started_unix_ms: 1_754_000_000_000,
            version: "0.1.0".to_string(),
        };
        state.write(&path).expect("write creates parents");
        assert_eq!(DaemonState::read(&path).unwrap(), Some(state));
        DaemonState::remove(&path).unwrap();
        assert_eq!(DaemonState::read(&path).unwrap(), None);
        DaemonState::remove(&path).expect("double remove is fine");
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corrupt_state_reads_as_none() {
        let path = temp_path("corrupt");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "{not json").unwrap();
        assert_eq!(DaemonState::read(&path).unwrap(), None);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_file_reads_as_none() {
        let path = temp_path("missing");
        assert_eq!(DaemonState::read(&path).unwrap(), None);
    }
}
