//! Timestamped, size-rotated daemon log.
//!
//! One writer, line-at-a-time, every line prefixed with a UTC timestamp.
//! When the current file would exceed the byte budget the files shift
//! (`daemon.log` → `daemon.log.1` → … → `daemon.log.<keep>`, oldest
//! dropped) and a fresh file is opened — an unattended daemon can log
//! forever in at most `(keep + 1) × max_bytes` of disk.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::state::now_unix_ms;

/// Default rotation threshold: 10 MiB, like workgraph's service log.
pub const DEFAULT_MAX_BYTES: u64 = 10 * 1024 * 1024;
/// Default rotated generations kept.
pub const DEFAULT_KEEP: usize = 5;

/// Render Unix milliseconds as `YYYY-MM-DDThh:mm:ss.mmmZ` (proleptic
/// Gregorian, UTC). Std-only — no chrono in this workspace.
pub fn format_utc_ms(unix_ms: u64) -> String {
    let ms = unix_ms % 1000;
    let secs = unix_ms / 1000;
    let (sec, min, hour) = (secs % 60, (secs / 60) % 60, (secs / 3600) % 24);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days, shifted to the 1970 epoch.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}T{hour:02}:{min:02}:{sec:02}.{ms:03}Z")
}

struct Writer {
    file: File,
    len: u64,
}

/// The rotating log. Cheap to share behind an `Arc`; `log` takes `&self`.
pub struct RotatingLog {
    path: PathBuf,
    max_bytes: u64,
    keep: usize,
    writer: Mutex<Option<Writer>>,
}

impl RotatingLog {
    /// Open (appending) the log at `path` with the default 10 MiB / keep-5
    /// rotation policy, creating parent directories.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<RotatingLog> {
        Self::with_policy(path, DEFAULT_MAX_BYTES, DEFAULT_KEEP)
    }

    /// Open with an explicit rotation policy. `max_bytes` is a threshold,
    /// not a hard cap: the line that crosses it triggers rotation first,
    /// so no single file exceeds `max_bytes` plus one line.
    pub fn with_policy(
        path: impl Into<PathBuf>,
        max_bytes: u64,
        keep: usize,
    ) -> io::Result<RotatingLog> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let log = RotatingLog {
            path,
            max_bytes: max_bytes.max(1),
            keep,
            writer: Mutex::new(None),
        };
        log.with_writer(|_| Ok(()))?;
        Ok(log)
    }

    /// The active log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The path of rotated generation `n` (1 = most recent).
    pub fn rotated_path(&self, n: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(format!(".{n}"));
        PathBuf::from(name)
    }

    /// Append one timestamped line, rotating first if it would cross the
    /// byte budget. Errors are swallowed: logging must never take the
    /// daemon down, and there is nowhere better to report them.
    pub fn log(&self, line: &str) {
        let stamped = format!("[{}] {line}\n", format_utc_ms(now_unix_ms()));
        let _ = self.with_writer(|writer| {
            writer.file.write_all(stamped.as_bytes())?;
            writer.len += stamped.len() as u64;
            Ok(())
        });
    }

    /// Run `f` with an open writer, rotating beforehand if the file is at
    /// or past the budget.
    fn with_writer(&self, f: impl FnOnce(&mut Writer) -> io::Result<()>) -> io::Result<()> {
        let mut slot = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if slot.as_ref().is_some_and(|w| w.len >= self.max_bytes) {
            *slot = None;
            self.shift_generations()?;
        }
        if slot.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            let len = file.metadata().map(|m| m.len()).unwrap_or(0);
            *slot = Some(Writer { file, len });
        }
        f(slot.as_mut().expect("writer opened above"))
    }

    /// `daemon.log.(keep)` is dropped, every other generation shifts up by
    /// one, and the active file becomes `.1`.
    fn shift_generations(&self) -> io::Result<()> {
        if self.keep == 0 {
            return fs::remove_file(&self.path);
        }
        let _ = fs::remove_file(self.rotated_path(self.keep));
        for n in (1..self.keep).rev() {
            let from = self.rotated_path(n);
            if from.exists() {
                fs::rename(&from, self.rotated_path(n + 1))?;
            }
        }
        fs::rename(&self.path, self.rotated_path(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hypersweep-rotate-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn timestamps_render_known_instants() {
        assert_eq!(format_utc_ms(0), "1970-01-01T00:00:00.000Z");
        // 2026-08-04 00:00:00 UTC.
        assert_eq!(format_utc_ms(1_785_801_600_000), "2026-08-04T00:00:00.000Z");
        assert_eq!(format_utc_ms(951_827_696_789), "2000-02-29T12:34:56.789Z");
    }

    #[test]
    fn lines_are_timestamped_and_appended() {
        let dir = temp_dir("append");
        let log = RotatingLog::open(dir.join("daemon.log")).unwrap();
        log.log("first");
        log.log("second");
        let contents = fs::read_to_string(dir.join("daemon.log")).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('['), "timestamp prefix: {}", lines[0]);
        assert!(lines[0].ends_with("] first"));
        assert!(lines[1].ends_with("] second"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_shifts_generations_and_drops_the_oldest() {
        let dir = temp_dir("shift");
        let path = dir.join("daemon.log");
        // Budget of one byte: every line rotates the previous one out.
        let log = RotatingLog::with_policy(&path, 1, 2).unwrap();
        for i in 0..5 {
            log.log(&format!("line {i}"));
        }
        // Active file holds the newest line; .1 and .2 the two before it;
        // older generations were dropped.
        let newest = fs::read_to_string(&path).unwrap();
        assert!(newest.contains("line 4"));
        assert!(fs::read_to_string(log.rotated_path(1))
            .unwrap()
            .contains("line 3"));
        assert!(fs::read_to_string(log.rotated_path(2))
            .unwrap()
            .contains("line 2"));
        assert!(!log.rotated_path(3).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_the_existing_file() {
        let dir = temp_dir("reopen");
        let path = dir.join("daemon.log");
        RotatingLog::open(&path).unwrap().log("before restart");
        RotatingLog::open(&path).unwrap().log("after restart");
        let contents = fs::read_to_string(&path).unwrap();
        assert!(contents.contains("before restart"));
        assert!(contents.contains("after restart"));
        let _ = fs::remove_dir_all(&dir);
    }
}
