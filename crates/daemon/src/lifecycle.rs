//! start / status / stop / restart over the state file.
//!
//! The state machine is deliberately tiny: a daemon is Running when its
//! state file's PID probes alive *and* the process's cmdline still looks
//! like a serve daemon; everything else is NotRunning or Stale. Every
//! lifecycle touch that observes staleness cleans it up (state file
//! removed, dead Unix socket unlinked) — including the socket left behind
//! by a `kill -9`, which no graceful-drain path ever got to unlink.

use std::fs;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crate::rotate::RotatingLog;
use crate::state::DaemonState;
use crate::sys;

/// How long `stop` waits for a graceful drain before escalating to
/// SIGKILL.
pub const DEFAULT_STOP_GRACE: Duration = Duration::from_secs(10);

/// How long `start` waits for the child to publish its state file.
pub const DEFAULT_START_WAIT: Duration = Duration::from_secs(15);

/// Layout of a daemon state directory.
#[derive(Clone, Debug)]
pub struct DaemonPaths {
    dir: PathBuf,
}

impl DaemonPaths {
    /// A state directory at `dir` (nothing is created until `start`).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DaemonPaths { dir: dir.into() }
    }

    /// The state directory itself.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `state.json` — the daemon's published identity and the lock.
    pub fn state_file(&self) -> PathBuf {
        self.dir.join("state.json")
    }

    /// `daemon.log` — the rotating log every component writes through.
    pub fn log_file(&self) -> PathBuf {
        self.dir.join("daemon.log")
    }

    /// `cache.jsonl` — the persistent run-cache append log.
    pub fn cache_file(&self) -> PathBuf {
        self.dir.join("cache.jsonl")
    }

    /// `daemon.sock` — the default Unix-domain listener.
    pub fn socket_file(&self) -> PathBuf {
        self.dir.join("daemon.sock")
    }
}

/// What probing a recorded PID concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Liveness {
    /// The PID is alive and still looks like a serve daemon.
    Running,
    /// Dead, or recycled by an unrelated process.
    Stale,
}

/// Probe whether `state` still describes a live serve daemon. A PID
/// recycled by an unrelated process fails the cmdline identity check and
/// reads as [`Liveness::Stale`]; an alive PID whose `/proc` entry cannot
/// be read at all (no procfs, EPERM) is conservatively Running.
pub fn probe(state: &DaemonState) -> Liveness {
    if !sys::pid_alive(state.pid) {
        return Liveness::Stale;
    }
    match sys::process_cmdline(state.pid) {
        Some(cmdline) => {
            let looks_like_serve = cmdline.split(' ').any(|tok| tok == "serve")
                || cmdline.split(' ').next().is_some_and(|argv0| {
                    Path::new(argv0)
                        .file_name()
                        .is_some_and(|n| n.to_string_lossy().starts_with("hypersweep"))
                });
            if looks_like_serve {
                Liveness::Running
            } else {
                Liveness::Stale
            }
        }
        None => Liveness::Running,
    }
}

/// What `status` concluded about the state directory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatusOutcome {
    /// A live daemon; its published state.
    Running(DaemonState),
    /// No state file (or an unparseable one).
    NotRunning,
    /// A state file whose PID is dead or recycled.
    Stale(DaemonState),
}

/// Probe the state directory without mutating anything.
pub fn status(paths: &DaemonPaths) -> io::Result<StatusOutcome> {
    match DaemonState::read(&paths.state_file())? {
        None => Ok(StatusOutcome::NotRunning),
        Some(state) => match probe(&state) {
            Liveness::Running => Ok(StatusOutcome::Running(state)),
            Liveness::Stale => Ok(StatusOutcome::Stale(state)),
        },
    }
}

/// Remove a stale daemon's leavings: the state file, and — the `kill -9`
/// path no graceful drain ever covered — its Unix socket, probed with a
/// connect first so a socket some *new* live daemon owns is never
/// unlinked.
pub fn cleanup_stale(paths: &DaemonPaths, state: &DaemonState, log: Option<&RotatingLog>) {
    if let Some(log) = log {
        log.log(&format!(
            "cleanup: removing stale state for pid {} (addr {})",
            state.pid, state.addr
        ));
    }
    let _ = DaemonState::remove(&paths.state_file());
    if let Some(uds) = &state.uds {
        let path = Path::new(uds);
        if path.exists() && UnixStream::connect(path).is_err() {
            if let Some(log) = log {
                log.log(&format!("cleanup: unlinking dead socket {uds}"));
            }
            let _ = fs::remove_file(path);
        }
    }
}

/// How `start` should launch the serve child.
#[derive(Clone, Debug)]
pub struct StartOptions {
    /// The binary to execute (normally `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Full argv for the child, e.g. `["serve", "--addr", …,
    /// "--state-file", …]`. The child must publish the state file once
    /// bound — that is what readiness polling watches.
    pub args: Vec<String>,
    /// Take over a live daemon instead of refusing.
    pub force: bool,
    /// Readiness timeout.
    pub wait: Duration,
}

impl StartOptions {
    /// Options launching `exe` with `args`, no takeover, default wait.
    pub fn new(exe: impl Into<PathBuf>, args: Vec<String>) -> Self {
        StartOptions {
            exe: exe.into(),
            args,
            force: false,
            wait: DEFAULT_START_WAIT,
        }
    }
}

fn tail_of(path: &Path, lines: usize) -> String {
    let contents = fs::read_to_string(path).unwrap_or_default();
    let all: Vec<&str> = contents.lines().collect();
    let start = all.len().saturating_sub(lines);
    all[start..].join("\n")
}

/// Start a detached serve daemon and wait until it publishes its state
/// file. Refuses if one is already running (unless `force`, which stops
/// the incumbent first); cleans up stale state from crashed daemons.
pub fn start(paths: &DaemonPaths, opts: &StartOptions) -> Result<DaemonState, String> {
    fs::create_dir_all(paths.dir())
        .map_err(|e| format!("cannot create state dir {}: {e}", paths.dir().display()))?;
    let log = RotatingLog::open(paths.log_file())
        .map_err(|e| format!("cannot open {}: {e}", paths.log_file().display()))?;
    match status(paths).map_err(|e| format!("cannot read state file: {e}"))? {
        StatusOutcome::Running(state) if !opts.force => {
            return Err(format!(
                "daemon already running (pid {}, addr {}); use --force to take over",
                state.pid, state.addr
            ));
        }
        StatusOutcome::Running(state) => {
            log.log(&format!(
                "start --force: taking over running daemon pid {}",
                state.pid
            ));
            stop_running(paths, &state, DEFAULT_STOP_GRACE, &log);
        }
        StatusOutcome::Stale(state) => cleanup_stale(paths, &state, Some(&log)),
        StatusOutcome::NotRunning => {
            // A state file may exist but be unparseable; clear it.
            let _ = DaemonState::remove(&paths.state_file());
        }
    }

    log.log(&format!(
        "start: spawning {} {}",
        opts.exe.display(),
        opts.args.join(" ")
    ));
    let stdout = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(paths.log_file())
        .map_err(|e| format!("cannot open daemon log for the child: {e}"))?;
    let stderr = stdout
        .try_clone()
        .map_err(|e| format!("cannot clone daemon log handle: {e}"))?;
    let mut cmd = Command::new(&opts.exe);
    cmd.args(&opts.args)
        .stdin(Stdio::null())
        .stdout(stdout)
        .stderr(stderr);
    sys::detach_into_new_session(&mut cmd);
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", opts.exe.display()))?;

    match wait_for_state(paths, &mut child, opts.wait) {
        Ok(state) => {
            log.log(&format!(
                "start: daemon up (pid {}, addr {}{})",
                state.pid,
                state.addr,
                state
                    .uds
                    .as_deref()
                    .map(|u| format!(", uds {u}"))
                    .unwrap_or_default()
            ));
            Ok(state)
        }
        Err(e) => {
            log.log(&format!("start: failed: {e}"));
            let _ = child.kill();
            let _ = child.wait();
            let tail = tail_of(&paths.log_file(), 12);
            Err(format!("{e}\n--- daemon.log tail ---\n{tail}"))
        }
    }
}

/// Poll for a state file naming the spawned child, failing fast if the
/// child exits during startup (bad flags, bind failure).
fn wait_for_state(
    paths: &DaemonPaths,
    child: &mut Child,
    wait: Duration,
) -> Result<DaemonState, String> {
    let deadline = Instant::now() + wait;
    loop {
        if let Some(state) = DaemonState::read(&paths.state_file()).ok().flatten() {
            if state.pid == child.id() {
                return Ok(state);
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(format!("daemon exited during startup ({status})"));
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "daemon did not publish {} within {:.1}s",
                paths.state_file().display(),
                wait.as_secs_f64()
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// What `stop` did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopOutcome {
    /// A live daemon was stopped. `forced` means it ignored the graceful
    /// signal and needed SIGKILL.
    Stopped {
        /// The stopped daemon's PID.
        pid: u32,
        /// Whether SIGKILL was needed.
        forced: bool,
    },
    /// Only stale state was found; it was cleaned up.
    WasStale,
    /// Nothing to stop.
    NotRunning,
}

/// Stop the daemon: SIGTERM, wait up to `grace` for the drain, then
/// SIGKILL; stale leavings are cleaned up either way.
pub fn stop(paths: &DaemonPaths, grace: Duration) -> Result<StopOutcome, String> {
    let log = RotatingLog::open(paths.log_file()).ok();
    match status(paths).map_err(|e| format!("cannot read state file: {e}"))? {
        StatusOutcome::NotRunning => Ok(StopOutcome::NotRunning),
        StatusOutcome::Stale(state) => {
            cleanup_stale(paths, &state, log.as_ref());
            Ok(StopOutcome::WasStale)
        }
        StatusOutcome::Running(state) => {
            let log = match log {
                Some(log) => log,
                None => RotatingLog::open(paths.log_file())
                    .map_err(|e| format!("cannot open daemon log: {e}"))?,
            };
            let forced = stop_running(paths, &state, grace, &log);
            Ok(StopOutcome::Stopped {
                pid: state.pid,
                forced,
            })
        }
    }
}

/// Signal a live daemon down; returns whether SIGKILL was needed. The
/// graceful path lets the daemon remove its own state file (it compacts
/// the cache first); the forced path cleans up after it.
fn stop_running(
    paths: &DaemonPaths,
    state: &DaemonState,
    grace: Duration,
    log: &RotatingLog,
) -> bool {
    log.log(&format!("stop: SIGTERM -> pid {}", state.pid));
    let _ = sys::send_signal(state.pid, sys::SIGTERM);
    let deadline = Instant::now() + grace;
    while Instant::now() < deadline {
        if !sys::pid_alive(state.pid) {
            // Graceful exit; make sure nothing lingers (the daemon removes
            // its own state file, but belt and braces after races).
            cleanup_stale(paths, state, None);
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    log.log(&format!(
        "stop: pid {} ignored SIGTERM for {:.1}s, escalating to SIGKILL",
        state.pid,
        grace.as_secs_f64()
    ));
    let _ = sys::send_signal(state.pid, sys::SIGKILL);
    let deadline = Instant::now() + Duration::from_secs(5);
    while sys::pid_alive(state.pid) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    cleanup_stale(paths, state, Some(log));
    true
}

/// `stop` (if anything is running) then `start`.
pub fn restart(paths: &DaemonPaths, opts: &StartOptions) -> Result<DaemonState, String> {
    stop(paths, DEFAULT_STOP_GRACE)?;
    start(paths, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::now_unix_ms;

    fn temp_paths(name: &str) -> DaemonPaths {
        let dir = std::env::temp_dir().join(format!(
            "hypersweep-lifecycle-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        DaemonPaths::new(dir)
    }

    fn state_for(pid: u32, uds: Option<String>) -> DaemonState {
        DaemonState {
            pid,
            addr: "127.0.0.1:0".to_string(),
            uds,
            started_unix_ms: now_unix_ms(),
            version: "0.1.0".to_string(),
        }
    }

    #[test]
    fn empty_dir_is_not_running() {
        let paths = temp_paths("empty");
        assert_eq!(status(&paths).unwrap(), StatusOutcome::NotRunning);
    }

    #[test]
    fn dead_pid_reads_as_stale_and_stop_cleans_it() {
        let paths = temp_paths("dead-pid");
        // Spawn and reap a child: its PID is then guaranteed dead.
        let mut child = Command::new("true").spawn().expect("spawn /bin/true");
        let pid = child.id();
        child.wait().unwrap();
        let state = state_for(pid, None);
        state.write(&paths.state_file()).unwrap();
        assert_eq!(status(&paths).unwrap(), StatusOutcome::Stale(state));
        assert_eq!(
            stop(&paths, Duration::from_millis(100)).unwrap(),
            StopOutcome::WasStale
        );
        assert!(!paths.state_file().exists(), "stale state cleaned up");
        assert_eq!(
            stop(&paths, Duration::from_millis(100)).unwrap(),
            StopOutcome::NotRunning
        );
        let _ = fs::remove_dir_all(paths.dir());
    }

    #[test]
    fn pid_reused_by_unrelated_process_reads_as_stale() {
        let paths = temp_paths("pid-reuse");
        // A live process that is definitely not a serve daemon stands in
        // for a recycled PID.
        let mut child = Command::new("sleep")
            .arg("30")
            .spawn()
            .expect("spawn sleep");
        let state = state_for(child.id(), None);
        state.write(&paths.state_file()).unwrap();
        assert_eq!(probe(&state), Liveness::Stale, "sleep(1) is not a daemon");
        assert_eq!(status(&paths).unwrap(), StatusOutcome::Stale(state));
        // stop() must clean up the state file and must NOT kill the
        // unrelated process.
        assert_eq!(
            stop(&paths, Duration::from_millis(100)).unwrap(),
            StopOutcome::WasStale
        );
        assert!(sys::pid_alive(child.id()), "unrelated process untouched");
        child.kill().unwrap();
        child.wait().unwrap();
        let _ = fs::remove_dir_all(paths.dir());
    }

    #[test]
    fn cleanup_unlinks_dead_socket_but_not_live_one() {
        let paths = temp_paths("socket");
        fs::create_dir_all(paths.dir()).unwrap();
        // Dead socket: a file nothing listens on (as left by kill -9).
        let dead = paths.socket_file();
        let listener = std::os::unix::net::UnixListener::bind(&dead).unwrap();
        drop(listener); // closed, but the path stays on disk
        assert!(dead.exists());
        let state = state_for(u32::MAX - 1, Some(dead.display().to_string()));
        cleanup_stale(&paths, &state, None);
        assert!(!dead.exists(), "dead socket reclaimed");

        // Live socket: still accepting, must survive cleanup.
        let live = paths.dir().join("live.sock");
        let _listener = std::os::unix::net::UnixListener::bind(&live).unwrap();
        let state = state_for(u32::MAX - 1, Some(live.display().to_string()));
        cleanup_stale(&paths, &state, None);
        assert!(live.exists(), "live socket must not be unlinked");
        let _ = fs::remove_dir_all(paths.dir());
    }

    #[test]
    fn start_reports_a_child_that_dies_during_startup() {
        let paths = temp_paths("dies");
        // `false` exits immediately without ever publishing a state file.
        let opts = StartOptions {
            exe: PathBuf::from("false"),
            args: vec![],
            force: false,
            wait: Duration::from_secs(5),
        };
        let err = start(&paths, &opts).expect_err("child exits at once");
        assert!(
            err.contains("exited during startup"),
            "unexpected error: {err}"
        );
        let _ = fs::remove_dir_all(paths.dir());
    }

    #[test]
    fn start_times_out_on_a_child_that_never_publishes() {
        let paths = temp_paths("timeout");
        let opts = StartOptions {
            exe: PathBuf::from("sleep"),
            args: vec!["30".to_string()],
            force: false,
            wait: Duration::from_millis(300),
        };
        let err = start(&paths, &opts).expect_err("never publishes");
        assert!(err.contains("did not publish"), "unexpected error: {err}");
        let _ = fs::remove_dir_all(paths.dir());
    }
}
