//! Exact reference bounds for the contiguous monotone search number.
//!
//! In a monotone, contiguous search every decontaminated node adjacent to
//! contaminated territory must be guarded, so a strategy whose clean set
//! grows `{homebase} = S_0 ⊂ S_1 ⊂ … ⊂ V` (one node per step, connected
//! throughout) needs at least `max_t |∂S_t|` agents, where `∂S` is the set
//! of nodes of `S` with a neighbour outside `S`. Minimizing that peak over
//! all growth orders is a bottleneck shortest path over the connected-set
//! lattice — computed exactly here by a Dijkstra variant for graphs up to
//! ~20 nodes (`H_4` included).
//!
//! The paper leaves the optimal team size for the hypercube open (§5:
//! "an interesting open problem is to determine whether our strategy for
//! the first model is optimal"); this module lets the experiments place
//! Algorithm CLEAN's exact team against the true boundary optimum for
//! small `d`.

use std::collections::BinaryHeap;

use hypersweep_topology::{Node, Topology};

/// Result of the exact boundary-optimum search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryOptimum {
    /// The minimal peak boundary over all monotone contiguous growth
    /// orders — a lower bound on the team size (and achievable with at
    /// most one extra roving agent).
    pub peak_boundary: u32,
    /// One optimal growth order (the nodes in the order they are added
    /// after the homebase).
    pub order: Vec<Node>,
}

fn boundary_size<T: Topology + ?Sized>(topo: &T, mask: u64) -> u32 {
    let n = topo.node_count();
    let mut count = 0;
    let mut nbrs = Vec::new();
    for i in 0..n {
        if mask & (1 << i) != 0 {
            topo.neighbors_into(Node(i as u32), &mut nbrs);
            if nbrs.iter().any(|y| mask & (1 << y.index()) == 0) {
                count += 1;
            }
        }
    }
    count
}

/// Exact minimal peak boundary for searching `topo` from `homebase`.
///
/// # Panics
///
/// Panics if the graph has more than 24 nodes (the state space is
/// `2^n`).
pub fn boundary_optimum<T: Topology + ?Sized>(topo: &T, homebase: Node) -> BoundaryOptimum {
    let n = topo.node_count();
    assert!(n <= 24, "exact boundary optimum is limited to 24 nodes");
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    let start: u64 = 1 << homebase.index();

    // Bottleneck Dijkstra: best[mask] = minimal achievable peak boundary
    // to reach `mask`. Store in a hashmap keyed by mask.
    let mut best: std::collections::HashMap<u64, u32> = Default::default();
    let mut pred: std::collections::HashMap<u64, (u64, Node)> = Default::default();
    // Max-heap by Reverse(peak).
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u64)>> = BinaryHeap::new();
    let b0 = boundary_size(topo, start);
    best.insert(start, b0);
    heap.push(std::cmp::Reverse((b0, start)));
    let mut nbrs = Vec::new();

    while let Some(std::cmp::Reverse((peak, mask))) = heap.pop() {
        if best.get(&mask).copied() != Some(peak) {
            continue; // stale entry
        }
        if mask == full {
            // Reconstruct the order.
            let mut order = Vec::new();
            let mut cur = mask;
            while cur != start {
                let (prev, added) = pred[&cur];
                order.push(added);
                cur = prev;
            }
            order.reverse();
            return BoundaryOptimum {
                peak_boundary: peak,
                order,
            };
        }
        // Expand by any neighbour of the current set.
        for i in 0..n {
            if mask & (1 << i) != 0 {
                topo.neighbors_into(Node(i as u32), &mut nbrs);
                for &y in &nbrs {
                    let bit = 1u64 << y.index();
                    if mask & bit == 0 {
                        let next = mask | bit;
                        let nb = boundary_size(topo, next);
                        let npeak = peak.max(nb);
                        if best.get(&next).map(|&b| npeak < b).unwrap_or(true) {
                            best.insert(next, npeak);
                            pred.insert(next, (mask, y));
                            heap.push(std::cmp::Reverse((npeak, next)));
                        }
                    }
                }
            }
        }
    }
    unreachable!("connected graphs always reach the full set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_topology::graph::{AdjGraph, Complete, Path, Ring, Star};
    use hypersweep_topology::Hypercube;

    #[test]
    fn path_optimum_is_one() {
        let p = Path::new(8);
        let opt = boundary_optimum(&p, Node(0));
        assert_eq!(opt.peak_boundary, 1);
        assert_eq!(opt.order.len(), 7);
    }

    #[test]
    fn ring_optimum_is_two() {
        let r = Ring::new(9);
        let opt = boundary_optimum(&r, Node(0));
        assert_eq!(opt.peak_boundary, 2);
    }

    #[test]
    fn star_optimum_is_one_from_center_but_team_is_two() {
        // Guards-only bound: the centre alone walls off every leaf, so the
        // peak boundary is 1 — yet a real team needs a second, *moving*
        // agent (the tree recurrence correctly says 2). The gap is at most
        // one roving agent.
        let s = Star::new(10);
        assert_eq!(boundary_optimum(&s, Node(0)).peak_boundary, 1);
        let g = AdjGraph::from_topology(&s);
        assert_eq!(crate::tree_search::tree_search_number(&g, Node(0)), 2);
    }

    #[test]
    fn complete_graph_optimum_is_n_minus_one() {
        // Until only one contaminated node remains, every clean node
        // borders it… the peak is n−1 when one node is left out.
        let k = Complete::new(6);
        assert_eq!(boundary_optimum(&k, Node(0)).peak_boundary, 5);
    }

    #[test]
    fn hypercube_h2_and_h3_optima() {
        // H_2 (a 4-cycle): 2. H_3: at |S| = 5 at most one node can be
        // interior (two interiors would need 6 distinct closed-neighbour
        // nodes), so the boundary peaks at 4 on every growth order.
        assert_eq!(
            boundary_optimum(&Hypercube::new(2), Node::ROOT).peak_boundary,
            2
        );
        let h3 = boundary_optimum(&Hypercube::new(3), Node::ROOT).peak_boundary;
        assert_eq!(h3, 4, "H_3 boundary optimum");
    }

    #[test]
    fn hypercube_h4_optimum_is_below_cleans_team() {
        let opt = boundary_optimum(&Hypercube::new(4), Node::ROOT);
        let clean_team = hypersweep_topology::combinatorics::clean_team_size(4);
        assert!(
            u128::from(opt.peak_boundary) <= clean_team,
            "optimum {} must not exceed CLEAN's team {clean_team}",
            opt.peak_boundary
        );
        // Regression-pin the exact value so any change is noticed: the
        // optimum is 7, one below CLEAN's team of 8 — so for d = 4 the
        // paper's strategy is within one agent of the guards-only optimum
        // (§5 leaves tightness open).
        assert_eq!(opt.peak_boundary, 7, "H_4 boundary optimum");
    }

    #[test]
    fn order_is_a_connected_growth() {
        let h = Hypercube::new(3);
        let opt = boundary_optimum(&h, Node::ROOT);
        let mut mask = 1u64;
        for x in &opt.order {
            let mut nbrs = Vec::new();
            h.neighbors_into(*x, &mut nbrs);
            assert!(
                nbrs.iter().any(|y| mask & (1 << y.index()) != 0),
                "{x} added without a settled neighbour"
            );
            mask |= 1 << x.index();
        }
        assert_eq!(mask.count_ones() as usize, h.node_count());
    }

    #[test]
    fn tree_optimum_matches_tree_search_recurrence() {
        // Cross-check the DP of `tree_search` against the exhaustive
        // optimum on small trees. The boundary optimum counts only guards,
        // while an agent team must also *move*: the DP value is the
        // boundary optimum or exactly one more (the roving agent).
        let trees: Vec<(usize, Vec<(u32, u32)>)> = vec![
            (7, vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]),
            (
                9,
                vec![
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (0, 5),
                    (5, 6),
                    (6, 7),
                    (7, 8),
                ],
            ),
            (6, vec![(0, 1), (0, 2), (0, 3), (3, 4), (3, 5)]),
        ];
        for (n, edges) in trees {
            let g = AdjGraph::from_edges(n, &edges);
            let dp = crate::tree_search::tree_search_number(&g, Node(0));
            let opt = boundary_optimum(&g, Node(0)).peak_boundary;
            assert!(
                dp == opt || dp == opt + 1,
                "tree on {n} nodes: dp {dp} vs boundary {opt}"
            );
        }
    }
}
