//! Contiguous monotone search beyond the hypercube: rings and tori.
//!
//! The graph-search literature the paper builds on (§1.2) treats many
//! topologies; these two plans demonstrate that the crate's model,
//! monitors and intruder are topology-agnostic, and give comparison points
//! for the hypercube results:
//!
//! * **Ring** ([`ring_plan`]): two agents leave the homebase in opposite
//!   directions and meet halfway — the optimal team (a cycle cannot be
//!   searched contiguously by one agent), `n − 1` moves.
//! * **Torus** ([`torus_plan`]): a *barrier* column stays guarded at the
//!   wrap-around while a second column of sweepers pushes across — `2R`
//!   agents for an `R × C` torus (sweep along the longer side), one slide
//!   per node plus the deployment walks.
//!
//! Both plans are centralized trace generators; correctness is established
//! the same way as everywhere else in this repository — by auditing the
//! trace with the monitors (spread-on-vacate contamination, contiguity,
//! capture).

use hypersweep_sim::{Event, EventKind, Metrics, Role};
use hypersweep_topology::graph::{Ring, Torus};
use hypersweep_topology::Node;

fn spawn(events: &mut Vec<Event>, agent: u32, node: Node) {
    events.push(Event {
        time: 0,
        kind: EventKind::Spawn {
            agent,
            node,
            role: Role::Worker,
        },
    });
}

fn mv(events: &mut Vec<Event>, moves: &mut u64, agent: u32, from: Node, to: Node) {
    *moves += 1;
    events.push(Event {
        time: 0,
        kind: EventKind::Move {
            agent,
            from,
            to,
            role: Role::Worker,
        },
    });
}

fn terminate(events: &mut Vec<Event>, agent: u32, node: Node) {
    events.push(Event {
        time: 0,
        kind: EventKind::Terminate { agent, node },
    });
}

/// The two-agent ring sweep from homebase `0`: agent 1 walks clockwise
/// (`+1`), agent 0 counter-clockwise (`−1`), until every node is guarded or
/// clean; they terminate on adjacent nodes (or the same node for odd
/// gaps). Returns the metrics and the audited-ready trace.
pub fn ring_plan(ring: Ring) -> (Metrics, Vec<Event>) {
    let n = hypersweep_topology::Topology::node_count(&ring) as u32;
    let mut events = Vec::new();
    let mut moves = 0u64;
    spawn(&mut events, 0, Node(0));
    spawn(&mut events, 1, Node(0));
    // Counter-clockwise walker takes the first step so the homebase stays
    // guarded by agent 1 until agent 1 itself departs.
    let ccw_stops = (n - 1) / 2; // nodes n−1, n−2, …
    let cw_stops = n - 1 - ccw_stops; // nodes 1, 2, …
    let mut pos0 = Node(0);
    for step in 1..=ccw_stops {
        let to = Node(n - step);
        mv(&mut events, &mut moves, 0, pos0, to);
        pos0 = to;
    }
    let mut pos1 = Node(0);
    for step in 1..=cw_stops {
        let to = Node(step);
        mv(&mut events, &mut moves, 1, pos1, to);
        pos1 = to;
    }
    terminate(&mut events, 0, pos0);
    terminate(&mut events, 1, pos1);
    let metrics = Metrics {
        worker_moves: moves,
        coordinator_moves: 0,
        team_size: 2,
        peak_away: 2,
        ideal_time: Some(u64::from(cw_stops.max(ccw_stops))),
        activations: moves,
        peak_board_bits: 0,
        peak_local_bits: 0,
    };
    (metrics, events)
}

/// Column-sweep plan for an `R × C` torus from homebase `(0, 0)`:
///
/// 1. `R` *barrier* agents fill column 0 (each walks over the already
///    guarded prefix of the column — passing through a guarded node never
///    vacates it).
/// 2. `R` *sweepers* deploy to column 1 the same way (down column 0, one
///    hop across), then repeatedly slide one column to the right in row
///    order, cleaning columns `1 … C−1`.
/// 3. Everyone terminates in place: sweepers guard column `C−1`, the
///    barrier keeps the wrap-around sealed forever (like the paper's leaf
///    guards). Team: `2R`.
pub fn torus_plan(torus: Torus, rows: usize, cols: usize) -> (Metrics, Vec<Event>) {
    let at = |r: usize, c: usize| Node((r * cols + c) as u32);
    let _ = &torus;
    let mut events = Vec::new();
    let mut moves = 0u64;
    let team = 2 * rows as u32;
    for id in 0..team {
        spawn(&mut events, id, at(0, 0));
    }
    // Barrier agents 0..R: agent r settles at (r, 0). Agent 0 is already
    // home; agent r walks r hops down the guarded prefix.
    for r in 1..rows {
        let id = r as u32;
        for step in 0..r {
            mv(&mut events, &mut moves, id, at(step, 0), at(step + 1, 0));
        }
    }
    // Sweepers R..2R: agent R+r settles at (r, 1) via column 0.
    for r in 0..rows {
        let id = (rows + r) as u32;
        for step in 0..r {
            mv(&mut events, &mut moves, id, at(step, 0), at(step + 1, 0));
        }
        mv(&mut events, &mut moves, id, at(r, 0), at(r, 1));
    }
    // Sweep columns 1 → C−1.
    for c in 1..cols - 1 {
        for r in 0..rows {
            let id = (rows + r) as u32;
            mv(&mut events, &mut moves, id, at(r, c), at(r, c + 1));
        }
    }
    for r in 0..rows {
        terminate(&mut events, r as u32, at(r, 0));
        terminate(&mut events, (rows + r) as u32, at(r, cols - 1));
    }
    let metrics = Metrics {
        worker_moves: moves,
        coordinator_moves: 0,
        team_size: u64::from(team),
        peak_away: u64::from(team) - 1,
        ideal_time: None,
        activations: moves,
        peak_board_bits: 0,
        peak_local_bits: 0,
    };
    (metrics, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_intruder::{verify_trace, MonitorConfig};
    use hypersweep_topology::Topology;

    #[test]
    fn ring_plan_is_complete_with_two_agents() {
        for n in 3..=40 {
            let ring = Ring::new(n);
            let (metrics, events) = ring_plan(ring);
            assert_eq!(metrics.team_size, 2);
            assert_eq!(metrics.worker_moves, (n - 1) as u64, "n={n}");
            let verdict = verify_trace(
                &ring,
                Node(0),
                &events,
                MonitorConfig::with_intruder(Node((n / 2) as u32)),
            );
            assert!(verdict.is_complete(), "n={n}: {:?}", verdict.violations);
        }
    }

    #[test]
    fn ring_needs_two_agents_exactly() {
        // Lower bound: the exact boundary optimum of a cycle is 2.
        let ring = Ring::new(12);
        let opt = crate::bounds::boundary_optimum(&ring, Node(0));
        assert_eq!(opt.peak_boundary, 2);
    }

    #[test]
    fn torus_plan_is_complete_with_2r_agents() {
        for (r, c) in [(3usize, 3usize), (3, 5), (4, 4), (4, 7), (5, 6)] {
            let torus = Torus::new(r, c);
            let (metrics, events) = torus_plan(torus, r, c);
            assert_eq!(metrics.team_size, 2 * r as u64);
            let far = Node((torus.node_count() - 1) as u32);
            let verdict = verify_trace(&torus, Node(0), &events, MonitorConfig::with_intruder(far));
            assert!(verdict.is_complete(), "{r}x{c}: {:?}", verdict.violations);
        }
    }

    #[test]
    fn torus_moves_scale_linearly() {
        // One slide per swept cell + deployment walks: Θ(R·C).
        let (m34, _) = torus_plan(Torus::new(3, 4), 3, 4);
        let (m38, _) = torus_plan(Torus::new(3, 8), 3, 8);
        assert!(m38.worker_moves > m34.worker_moves);
        assert!(m38.worker_moves < 4 * m34.worker_moves);
    }

    #[test]
    fn torus_team_vs_exact_optimum_small() {
        // 3×5 torus (15 nodes ≤ 24): the plan's 6 agents vs the exhaustive
        // guards-only optimum — the plan must not beat the bound, and
        // should be within ~2× of it.
        let torus = Torus::new(3, 5);
        let opt = crate::bounds::boundary_optimum(&torus, Node(0)).peak_boundary;
        let (metrics, _) = torus_plan(torus, 3, 5);
        assert!(u64::from(opt) <= metrics.team_size);
        assert!(metrics.team_size <= 2 * u64::from(opt));
    }
}
