//! A generic planner for contiguous monotone search on arbitrary graphs.
//!
//! The paper's strategies are hand-crafted for the hypercube; this module
//! provides the natural general-purpose alternative: grow the
//! decontaminated set `S` from the homebase one node at a time, greedily
//! picking the expansion that minimizes the next inner boundary `|∂(S∪{u})|`
//! (a bottleneck-greedy heuristic for the exact optimum computed by
//! [`crate::bounds::boundary_optimum`] on small graphs). The plan layer
//! then realizes the growth order with actual agents:
//!
//! * every node of `S` adjacent to contaminated territory keeps a guard;
//! * an expansion to `u` is served by **sliding** an adjacent guard that
//!   the expansion itself releases, else by routing a **free** agent (an
//!   ex-guard with no contaminated neighbours) through `S`, else by hiring
//!   a new agent at the homebase;
//! * all movement stays inside the decontaminated region, so the plan is
//!   contiguous and monotone by construction — and every plan is audited
//!   by the monitors in the tests anyway.
//!
//! The planner is a *baseline*, not a contribution of the paper: the
//! experiments use it to ask how far generic greed lands from Algorithm
//! CLEAN's tailored team on the hypercube, and from the exact optimum on
//! small graphs.

use std::collections::VecDeque;

use hypersweep_sim::{Event, EventKind, Metrics, Role};
use hypersweep_topology::{Node, Topology};

/// A generated generic plan.
#[derive(Clone, Debug)]
pub struct GreedyPlan {
    /// Agents hired.
    pub team: u32,
    /// Total moves.
    pub moves: u64,
    /// The audited-ready trace.
    pub events: Vec<Event>,
    /// The growth order (after the homebase).
    pub order: Vec<Node>,
    /// Peak inner boundary along the growth (= guards needed, ignoring the
    /// routing agent).
    pub peak_boundary: u32,
}

struct PlanState<'a, T: Topology + ?Sized> {
    topo: &'a T,
    in_s: Vec<bool>,
    /// Number of contaminated neighbours per node.
    dirty_neighbors: Vec<u32>,
    /// Guard agent id per node (guards sit on boundary nodes).
    guard: Vec<Option<u32>>,
    /// Free agents: (id, position); position is inside `S`.
    free: Vec<(u32, Node)>,
    events: Vec<Event>,
    moves: u64,
    team: u32,
    homebase: Node,
}

impl<'a, T: Topology + ?Sized> PlanState<'a, T> {
    fn spawn(&mut self) -> u32 {
        let id = self.team;
        self.team += 1;
        self.events.push(Event {
            time: 0,
            kind: EventKind::Spawn {
                agent: id,
                node: self.homebase,
                role: Role::Worker,
            },
        });
        id
    }

    fn mv(&mut self, agent: u32, from: Node, to: Node) {
        self.moves += 1;
        self.events.push(Event {
            time: 0,
            kind: EventKind::Move {
                agent,
                from,
                to,
                role: Role::Worker,
            },
        });
    }

    /// BFS path inside `S` from `from` to `to` (`to` may be outside `S` if
    /// adjacent to it). Panics if unreachable — `S` is connected by
    /// construction.
    fn route(&self, from: Node, to: Node) -> Vec<Node> {
        if from == to {
            return Vec::new();
        }
        let n = self.topo.node_count();
        let mut prev = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        prev[from.index()] = from.0;
        queue.push_back(from);
        let mut nbrs = Vec::new();
        'bfs: while let Some(x) = queue.pop_front() {
            self.topo.neighbors_into(x, &mut nbrs);
            for &y in &nbrs {
                if prev[y.index()] != u32::MAX {
                    continue;
                }
                if y == to {
                    prev[y.index()] = x.0;
                    break 'bfs;
                }
                if self.in_s[y.index()] {
                    prev[y.index()] = x.0;
                    queue.push_back(y);
                }
            }
        }
        assert_ne!(prev[to.index()], u32::MAX, "target unreachable inside S");
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = Node(prev[cur.index()]);
            path.push(cur);
        }
        path.pop(); // drop `from`
        path.reverse();
        path
    }

    /// Walk `agent` from `from` along `path` (already computed).
    fn walk(&mut self, agent: u32, from: Node, path: &[Node]) {
        let mut pos = from;
        for &hop in path {
            self.mv(agent, pos, hop);
            pos = hop;
        }
    }

    /// After `u` joined `S`, demote guards with no contaminated neighbours
    /// to free agents.
    fn release_guards_around(&mut self, u: Node) {
        let mut nbrs = Vec::new();
        self.topo.neighbors_into(u, &mut nbrs);
        let mut candidates = nbrs.clone();
        candidates.push(u);
        for v in candidates {
            if self.dirty_neighbors[v.index()] == 0 {
                if let Some(id) = self.guard[v.index()].take() {
                    self.free.push((id, v));
                }
            }
        }
    }
}

/// Plan a contiguous monotone search of `topo` from `homebase` using
/// bottleneck-greedy growth.
///
/// ```
/// use hypersweep_baselines::greedy_plan;
/// use hypersweep_topology::{graph::Ring, Node};
///
/// let plan = greedy_plan(&Ring::new(12), Node(0));
/// assert_eq!(plan.team, 2);         // two walkers meet halfway
/// assert_eq!(plan.moves, 11);       // one slide per remaining node
/// assert_eq!(plan.peak_boundary, 2);
/// ```
pub fn greedy_plan<T: Topology + ?Sized>(topo: &T, homebase: Node) -> GreedyPlan {
    let n = topo.node_count();
    let mut st = PlanState {
        topo,
        in_s: vec![false; n],
        dirty_neighbors: vec![0; n],
        guard: vec![None; n],
        free: Vec::new(),
        events: Vec::new(),
        moves: 0,
        team: 0,
        homebase,
    };
    let mut nbrs = Vec::new();
    for i in 0..n as u32 {
        st.dirty_neighbors[i as usize] = topo.degree(Node(i)) as u32;
    }

    // Seed: one agent guards the homebase.
    let first = st.spawn();
    st.in_s[homebase.index()] = true;
    topo.neighbors_into(homebase, &mut nbrs);
    for &y in &nbrs.clone() {
        st.dirty_neighbors[y.index()] -= 1;
    }
    if st.dirty_neighbors[homebase.index()] > 0 {
        st.guard[homebase.index()] = Some(first);
    } else {
        st.free.push((first, homebase));
    }

    let mut order = Vec::with_capacity(n - 1);
    let mut peak_boundary: u32 = 0;
    let mut boundary_now: u32 = u32::from(st.dirty_neighbors[homebase.index()] > 0);
    peak_boundary = peak_boundary.max(boundary_now);
    let mut frontier: Vec<Node> = {
        topo.neighbors_into(homebase, &mut nbrs);
        let mut f: Vec<Node> = nbrs.clone();
        f.sort();
        f.dedup();
        f
    };

    loop {
        if frontier.is_empty() {
            // Every node reachable from the homebase has been searched
            // (equals all nodes on connected graphs; the live component on
            // induced subgraphs).
            break;
        }
        // Pick the frontier node whose addition minimizes the next inner
        // boundary; ties to the smallest id for determinism.
        let mut best: Option<(u32, Node)> = None;
        for &u in &frontier {
            if st.in_s[u.index()] {
                continue;
            }
            // Boundary after adding u = current boundary
            //   − guards released among u's neighbours and u itself
            //   + (1 if u still has contaminated neighbours)
            //   (a neighbour v of u leaves the boundary iff u was its last
            //   contaminated neighbour).
            let mut after = boundary_now;
            topo.neighbors_into(u, &mut nbrs);
            for &v in &nbrs {
                if st.in_s[v.index()]
                    && st.dirty_neighbors[v.index()] == 1
                    && st.guard[v.index()].is_some()
                {
                    after -= 1;
                }
            }
            if st.dirty_neighbors[u.index()] > u32::from(false) {
                // u's own contaminated neighbours, after it joins S,
                // equal dirty_neighbors[u] (its S-neighbours are not
                // contaminated); u joins the boundary if any remain.
                if st.dirty_neighbors[u.index()] > 0 {
                    after += 1;
                }
            }
            match best {
                None => best = Some((after, u)),
                Some((b, bn)) => {
                    if after < b || (after == b && u < bn) {
                        best = Some((after, u));
                    } else {
                        best = Some((b, bn));
                    }
                }
            }
        }
        let (_, u) = best.expect("connected graph keeps a frontier");

        // Serve the expansion: slide > free > hire.
        topo.neighbors_into(u, &mut nbrs);
        let slide_from = nbrs
            .iter()
            .copied()
            .filter(|&v| {
                st.in_s[v.index()]
                    && st.guard[v.index()].is_some()
                    && st.dirty_neighbors[v.index()] == 1
            })
            .min();
        let (agent, arrived_from) = if let Some(v) = slide_from {
            let id = st.guard[v.index()].take().expect("guard present");
            st.mv(id, v, u);
            (id, v)
        } else if !st.free.is_empty() {
            // Nearest free agent (by routed distance — approximate with
            // the first found; routes are short in practice).
            let (id, pos) = st.free.pop().expect("non-empty");
            let path = st.route(pos, u);
            st.walk(id, pos, &path);
            (id, pos)
        } else {
            let id = st.spawn();
            let path = st.route(homebase, u);
            st.walk(id, homebase, &path);
            (id, homebase)
        };
        let _ = arrived_from;

        // u joins S.
        st.in_s[u.index()] = true;
        order.push(u);
        topo.neighbors_into(u, &mut nbrs);
        for &y in &nbrs.clone() {
            st.dirty_neighbors[y.index()] -= 1;
        }
        st.guard[u.index()] = Some(agent);
        st.release_guards_around(u);
        // Update frontier.
        topo.neighbors_into(u, &mut nbrs);
        for &y in &nbrs {
            if !st.in_s[y.index()] && !frontier.contains(&y) {
                frontier.push(y);
            }
        }
        frontier.retain(|&x| !st.in_s[x.index()]);
        // Recompute the boundary count.
        boundary_now = st
            .guard
            .iter()
            .enumerate()
            .filter(|(i, g)| g.is_some() && st.dirty_neighbors[*i] > 0)
            .count() as u32;
        peak_boundary = peak_boundary.max(boundary_now);
    }

    // Everyone terminates in place.
    let mut positions: Vec<(u32, Node)> = st
        .guard
        .iter()
        .enumerate()
        .filter_map(|(i, g)| g.map(|id| (id, Node(i as u32))))
        .collect();
    positions.extend(st.free.iter().copied());
    positions.sort();
    for (id, node) in positions {
        st.events.push(Event {
            time: 0,
            kind: EventKind::Terminate { agent: id, node },
        });
    }

    GreedyPlan {
        team: st.team,
        moves: st.moves,
        events: st.events,
        order,
        peak_boundary,
    }
}

/// Metrics view of a plan, for comparison tables.
pub fn greedy_metrics(plan: &GreedyPlan) -> Metrics {
    Metrics {
        worker_moves: plan.moves,
        coordinator_moves: 0,
        team_size: u64::from(plan.team),
        peak_away: u64::from(plan.team),
        ideal_time: None,
        activations: plan.moves,
        peak_board_bits: 0,
        peak_local_bits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::boundary_optimum;
    use hypersweep_intruder::{verify_trace, MonitorConfig};
    use hypersweep_topology::graph::{AdjGraph, Complete, Path, Ring, Star, Torus};
    use hypersweep_topology::{combinatorics as comb, Hypercube};

    fn audit<T: Topology + ?Sized>(topo: &T, home: Node, plan: &GreedyPlan) {
        let far = Node(topo.node_count() as u32 - 1);
        let cfg = if far == home {
            MonitorConfig::default()
        } else {
            MonitorConfig::with_intruder(far)
        };
        let verdict = verify_trace(topo, home, &plan.events, cfg);
        assert!(
            verdict.is_complete(),
            "plan not a correct search: {:?}",
            verdict.violations
        );
    }

    #[test]
    fn greedy_handles_elementary_graphs() {
        let p = Path::new(9);
        let plan = greedy_plan(&p, Node(0));
        audit(&p, Node(0), &plan);
        assert_eq!(plan.team, 1);

        let r = Ring::new(11);
        let plan = greedy_plan(&r, Node(0));
        audit(&r, Node(0), &plan);
        assert!(plan.team <= 3, "ring team {}", plan.team);

        let s = Star::new(12);
        let plan = greedy_plan(&s, Node(0));
        audit(&s, Node(0), &plan);
        assert_eq!(plan.team, 2);

        let k = Complete::new(7);
        let plan = greedy_plan(&k, Node(0));
        audit(&k, Node(0), &plan);
        assert!(plan.team >= 6);
    }

    #[test]
    fn greedy_on_small_hypercubes_vs_exact_optimum() {
        for d in 1..=4u32 {
            let cube = Hypercube::new(d);
            let plan = greedy_plan(&cube, Node::ROOT);
            audit(&cube, Node::ROOT, &plan);
            let opt = boundary_optimum(&cube, Node::ROOT).peak_boundary;
            assert!(
                plan.peak_boundary >= opt,
                "d={d}: greedy boundary below the optimum?!"
            );
            assert!(
                plan.team <= 2 * opt + 2,
                "d={d}: greedy team {} far above optimum {opt}",
                plan.team
            );
        }
    }

    #[test]
    fn greedy_is_competitive_with_clean_on_medium_cubes() {
        for d in 5..=8u32 {
            let cube = Hypercube::new(d);
            let plan = greedy_plan(&cube, Node::ROOT);
            audit(&cube, Node::ROOT, &plan);
            let clean = comb::clean_team_size(d);
            // No claim of superiority either way — just that generic greed
            // stays within a factor 2 of the tailored strategy.
            assert!(
                u128::from(plan.team) <= 2 * clean,
                "d={d}: greedy {} vs clean {clean}",
                plan.team
            );
        }
    }

    #[test]
    fn greedy_on_torus_beats_or_matches_the_column_sweep() {
        let torus = Torus::new(4, 6);
        let plan = greedy_plan(&torus, Node(0));
        audit(&torus, Node(0), &plan);
        let (sweep, _) = crate::other_topologies::torus_plan(torus, 4, 6);
        assert!(
            u64::from(plan.team) <= sweep.team_size + 2,
            "greedy {} vs column sweep {}",
            plan.team,
            sweep.team_size
        );
    }

    #[test]
    fn greedy_plans_on_random_trees_match_the_recurrence_within_slack() {
        // On trees, greedy should land close to the optimal recurrence.
        let g = AdjGraph::from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (2, 5),
                (2, 6),
                (5, 7),
                (5, 8),
            ],
        );
        let plan = greedy_plan(&g, Node(0));
        audit(&g, Node(0), &plan);
        let opt = crate::tree_search::tree_search_number(&g, Node(0));
        assert!(
            plan.team <= opt + 2,
            "greedy {} vs tree dp {opt}",
            plan.team
        );
    }

    #[test]
    fn greedy_handles_constant_degree_networks() {
        use hypersweep_topology::graph::{CubeConnectedCycles, DeBruijn};
        // de Bruijn: degree ≤ 4, so the boundary — and hence the team —
        // stays small relative to n.
        for k in 3..=7u32 {
            let g = DeBruijn::new(k);
            let plan = greedy_plan(&g, Node(0));
            audit(&g, Node(0), &plan);
            assert!(
                (plan.team as usize) < g.node_count() / 2,
                "DB(2,{k}): team {}",
                plan.team
            );
        }
        // CCC: 3-regular.
        for d in 3..=5u32 {
            let g = CubeConnectedCycles::new(d);
            let plan = greedy_plan(&g, Node(0));
            audit(&g, Node(0), &plan);
            assert!(
                (plan.team as usize) < g.node_count() / 2,
                "CCC({d}): team {}",
                plan.team
            );
        }
    }

    #[test]
    fn greedy_searches_a_faulty_hypercube() {
        use hypersweep_topology::graph::InducedSubgraph;
        // Knock out three hosts of H_5; the paper's strategies no longer
        // apply, the generic planner still cleans the live fabric.
        let cube = Hypercube::new(5);
        let faulty = [Node(9), Node(20), Node(27)];
        let g = InducedSubgraph::new(cube, &faulty);
        assert!(g.live_connected());
        let plan = greedy_plan(&g, Node::ROOT);
        let verdict = hypersweep_intruder::verify_trace(
            &g,
            Node::ROOT,
            &plan.events,
            hypersweep_intruder::MonitorConfig::default(),
        );
        // Removed nodes are isolated: they stay "contaminated" in the
        // field but are unreachable; completeness is over live nodes.
        assert!(verdict.monotone, "{:?}", verdict.violations);
        assert_eq!(
            plan.order.len() + 1,
            g.live_count(),
            "every live node is searched"
        );
    }

    #[test]
    fn growth_order_is_connected() {
        let cube = Hypercube::new(5);
        let plan = greedy_plan(&cube, Node::ROOT);
        let mut in_s = vec![false; cube.node_count()];
        in_s[Node::ROOT.index()] = true;
        for u in &plan.order {
            assert!(
                cube.neighbors(*u).any(|y| in_s[y.index()]),
                "{u} added disconnected"
            );
            in_s[u.index()] = true;
        }
        assert!(in_s.iter().all(|&b| b));
    }
}
