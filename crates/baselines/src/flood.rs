//! The trivial flooding baseline: one permanent guard per node.
//!
//! `n` agents start at the homebase; on a node of type `T(k)` they wait for
//! the full complement of `2^k` agents (the size of the sub-heap-queue),
//! leave one guard forever and push `2^i` agents to each child of type
//! `T(i)`. Every node ends permanently guarded: maximal team (`n`), minimal
//! wall-clock (`log n`), and `(n/2)·log n` moves. It anchors the
//! team-size axis of the comparison experiments from above.

use hypersweep_core::outcome::{
    audited_outcome, streamed_outcome, synthesized_outcome, SearchOutcome, SearchStrategy,
    StrategyError,
};
use hypersweep_core::visibility::VisBoard;
use hypersweep_sim::{
    Action, AgentProgram, Ctx, Engine, EngineConfig, Event, EventKind, EventSink, Metrics,
    NullSink, Policy, Role,
};
use hypersweep_topology::{BroadcastTree, Hypercube, Node};

/// Map a flood dispatch slot to its destination: slot `0` stays as the
/// guard; slot `s ≥ 1` goes to the child of type `floor(log2 s)` (so type
/// `i` receives `2^i` agents).
#[inline]
pub fn flood_slot_child_type(slot: u32) -> Option<u32> {
    if slot == 0 {
        None
    } else {
        Some(31 - slot.leading_zeros())
    }
}

/// The flooding agent.
pub struct FloodAgent;

impl AgentProgram for FloodAgent {
    type Board = VisBoard;

    fn step(&mut self, ctx: &mut Ctx<'_, VisBoard>) -> Action {
        let x = ctx.node();
        let d = ctx.cube().dim();
        let k = d - x.msb_position();
        if k == 0 {
            return Action::Terminate;
        }
        if !ctx.board().dispatch_started {
            let need = 1u64 << k; // the subtree size 2^k
            if u64::from(ctx.active_here()) < need {
                return Action::Wait;
            }
            if !ctx.smaller_neighbors_safe() {
                return Action::Wait;
            }
            ctx.board_mut().dispatch_started = true;
        }
        let slot = ctx.board().next_slot;
        ctx.board_mut().next_slot = slot + 1;
        match flood_slot_child_type(slot) {
            None => Action::Terminate, // stay as x's permanent guard
            Some(i) => Action::Move(d - i),
        }
    }
}

/// The flooding strategy: `n` agents, a guard everywhere.
#[derive(Clone, Copy, Debug)]
pub struct FloodStrategy {
    cube: Hypercube,
}

impl FloodStrategy {
    /// Build the strategy for `cube` (`d ≥ 1`).
    pub fn new(cube: Hypercube) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        FloodStrategy { cube }
    }

    /// Team size: `n`.
    pub fn team_size(&self) -> u64 {
        self.cube.node_count() as u64
    }

    /// Canonical trace, buffered into a `Vec` when `record_events` is set.
    /// Thin wrapper over [`FloodStrategy::synthesize_into`].
    pub fn synthesize(&self, record_events: bool) -> (Metrics, Option<Vec<Event>>) {
        if record_events {
            let mut events = Vec::new();
            let metrics = self.synthesize_into(&mut events);
            (metrics, Some(events))
        } else {
            (self.synthesize_into(&mut NullSink), None)
        }
    }

    /// Canonical trace streamed into `sink`: class `C_i` dispatches at
    /// round `i + 1`, exactly as the visibility wave, but with
    /// subtree-sized squads.
    pub fn synthesize_into(&self, sink: &mut dyn EventSink) -> Metrics {
        let cube = self.cube;
        let d = cube.dim();
        let tree = BroadcastTree::new(cube);
        let n = cube.node_count();
        let team = self.team_size();
        let mut station: Vec<Vec<u32>> = vec![Vec::new(); n];
        station[Node::ROOT.index()] = (0..team as u32).collect();
        for id in 0..team as u32 {
            sink.emit(Event {
                time: 0,
                kind: EventKind::Spawn {
                    agent: id,
                    node: Node::ROOT,
                    role: Role::Worker,
                },
            });
        }
        let mut moves: u64 = 0;
        for i in 0..=d {
            for x in tree.msb_class_nodes(i) {
                let k = tree.node_type(x);
                if k == 0 {
                    continue;
                }
                let group = std::mem::take(&mut station[x.index()]);
                debug_assert_eq!(group.len() as u64, 1 << k);
                for (slot, id) in group.into_iter().enumerate() {
                    match flood_slot_child_type(slot as u32) {
                        None => station[x.index()].push(id), // the guard stays
                        Some(t) => {
                            let to = x.flip(d - t);
                            moves += 1;
                            sink.emit(Event {
                                time: u64::from(i) + 1,
                                kind: EventKind::Move {
                                    agent: id,
                                    from: x,
                                    to,
                                    role: Role::Worker,
                                },
                            });
                            station[to.index()].push(id);
                        }
                    }
                }
            }
        }
        for x in cube.nodes() {
            for &id in &station[x.index()] {
                sink.emit(Event {
                    time: u64::from(d) + 1,
                    kind: EventKind::Terminate { agent: id, node: x },
                });
            }
        }
        Metrics {
            worker_moves: moves,
            coordinator_moves: 0,
            team_size: team,
            peak_away: team - 1, // everyone but the root's own guard
            ideal_time: Some(u64::from(d)),
            activations: moves,
            peak_board_bits: 0,
            peak_local_bits: 0,
        }
    }
}

impl SearchStrategy for FloodStrategy {
    fn name(&self) -> &'static str {
        "flood"
    }

    fn cube(&self) -> Hypercube {
        self.cube
    }

    fn run(&self, policy: Policy) -> Result<SearchOutcome, StrategyError> {
        let mut engine = Engine::new(
            self.cube,
            EngineConfig {
                policy,
                visibility: true,
                ..EngineConfig::default()
            },
        );
        for _ in 0..self.team_size() {
            engine.spawn(FloodAgent, Node::ROOT, Role::Worker);
        }
        let report = engine.run()?;
        Ok(audited_outcome(self.cube, &report))
    }

    fn fast(&self, audit: bool) -> SearchOutcome {
        if audit {
            streamed_outcome(self.cube, |sink| self.synthesize_into(sink))
        } else {
            synthesized_outcome(self.cube, self.synthesize_into(&mut NullSink), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_mapping_shares() {
        // k = 3: slots 0..8 → guard,T0,T1,T1,T2,T2,T2,T2.
        assert_eq!(flood_slot_child_type(0), None);
        assert_eq!(flood_slot_child_type(1), Some(0));
        assert_eq!(flood_slot_child_type(2), Some(1));
        assert_eq!(flood_slot_child_type(3), Some(1));
        for s in 4..8 {
            assert_eq!(flood_slot_child_type(s), Some(2));
        }
    }

    #[test]
    fn flood_guards_everything_with_n_agents() {
        for d in 1..=7 {
            let cube = Hypercube::new(d);
            let s = FloodStrategy::new(cube);
            for policy in [
                Policy::Fifo,
                Policy::Lifo,
                Policy::Random(5),
                Policy::Synchronous,
            ] {
                let outcome = s.run(policy).expect("completes");
                assert!(
                    outcome.is_complete(),
                    "d={d} {policy:?}: {:?}",
                    outcome.verdict.violations
                );
                assert_eq!(outcome.metrics.team_size, 1 << d);
                assert_eq!(
                    outcome.metrics.total_moves(),
                    u64::from(d) << (d - 1),
                    "moves = (n/2)·d at d={d}"
                );
            }
        }
    }

    #[test]
    fn flood_time_is_log_n() {
        for d in 1..=8 {
            let s = FloodStrategy::new(Hypercube::new(d));
            let o = s.run(Policy::Synchronous).unwrap();
            assert_eq!(o.metrics.ideal_time, Some(u64::from(d)));
        }
    }

    #[test]
    fn every_node_ends_guarded() {
        let cube = Hypercube::new(6);
        let s = FloodStrategy::new(cube);
        let mut engine = Engine::new(
            cube,
            EngineConfig {
                policy: Policy::RoundRobin,
                visibility: true,
                ..EngineConfig::default()
            },
        );
        for _ in 0..s.team_size() {
            engine.spawn(FloodAgent, Node::ROOT, Role::Worker);
        }
        let report = engine.run().unwrap();
        assert!(report.occupancy.iter().all(|&o| o == 1));
    }

    #[test]
    fn fast_path_agrees_with_engine() {
        for d in 1..=7 {
            let s = FloodStrategy::new(Hypercube::new(d));
            let fast = s.fast(true);
            assert!(fast.is_complete(), "d={d}");
            let eng = s.run(Policy::Synchronous).unwrap();
            assert_eq!(fast.metrics.total_moves(), eng.metrics.total_moves());
            assert_eq!(fast.metrics.team_size, eng.metrics.team_size);
            assert_eq!(fast.metrics.ideal_time, eng.metrics.ideal_time);
        }
    }
}
