//! Vertex-isoperimetric lower bounds for the hypercube team size.
//!
//! At any instant of a monotone contiguous search with decontaminated set
//! `S`, every node of `S` adjacent to contaminated territory must be
//! guarded, so the team is at least the *inner* vertex boundary `|∂_in S|`.
//! Minimizing over all sets of size `k` (connectivity and homebase
//! constraints only increase the true optimum) and maximizing over `k`
//! yields a rigorous lower bound valid for **every** strategy:
//!
//! `LB(d) = max_{1 ≤ k < n} min_{|S| = k} |∂_in S|`.
//!
//! By complementation, `min_{|S|=k} |∂_in S| = min_{|T|=n−k} |∂_out T|`,
//! and Harper's vertex-isoperimetric theorem states that initial segments
//! of the *simplicial order* minimize the out-boundary `|N(T) \ T|` in the
//! hypercube. This module implements the simplicial order, cross-validates
//! it against brute force for `d ≤ 4` (see the tests), and evaluates the
//! bound for arbitrary `d` — the quantitative side of the paper's §5 open
//! question on the optimality of Algorithm CLEAN.

use hypersweep_topology::{Hypercube, Node};

/// Compare two nodes in Harper's *simplicial order*: ascending by weight
/// (level); within a weight class, **descending** numeric order.
///
/// Intuition: within weight `w`, the first sets taken should hug the top of
/// the previous ball — taking `x` with *larger* value first keeps the
/// segment "ball-like". The order is validated against brute force for
/// `d ≤ 4` by the tests.
pub fn simplicial_cmp(a: Node, b: Node) -> std::cmp::Ordering {
    a.level().cmp(&b.level()).then_with(|| b.0.cmp(&a.0))
}

/// All nodes of `H_d` in simplicial order.
pub fn simplicial_order(cube: Hypercube) -> Vec<Node> {
    let mut nodes: Vec<Node> = cube.nodes().collect();
    nodes.sort_by(|&a, &b| simplicial_cmp(a, b));
    nodes
}

/// `min_{|T| = k} |N(T) \ T|` for every `k = 0..=n`, per Harper's theorem
/// (initial segments of the simplicial order are optimal).
pub fn min_out_boundary_profile(cube: Hypercube) -> Vec<u64> {
    let n = cube.node_count();
    let order = simplicial_order(cube);
    let mut in_set = vec![false; n];
    // Count, for each outside node, how many neighbours are inside; the
    // out-boundary is the number of outside nodes with ≥ 1 inside
    // neighbour. Maintain incrementally.
    let mut inside_neighbors = vec![0u32; n];
    let mut boundary: u64 = 0;
    let mut profile = Vec::with_capacity(n + 1);
    profile.push(0);
    for &x in &order {
        // x joins T: if it was boundary, it no longer is.
        if inside_neighbors[x.index()] > 0 {
            boundary -= 1;
        }
        in_set[x.index()] = true;
        for y in cube.neighbors(x) {
            if !in_set[y.index()] {
                if inside_neighbors[y.index()] == 0 {
                    boundary += 1;
                }
                inside_neighbors[y.index()] += 1;
            }
        }
        profile.push(boundary);
    }
    profile
}

/// `min_{|S| = k} |∂_in S|` for every `k` (inner boundary), via
/// complementation of [`min_out_boundary_profile`].
pub fn min_inner_boundary_profile(cube: Hypercube) -> Vec<u64> {
    let out = min_out_boundary_profile(cube);
    let n = cube.node_count();
    (0..=n).map(|k| out[n - k]).collect()
}

/// The isoperimetric team lower bound
/// `LB(d) = max_{1 ≤ k < n} min_{|S|=k} |∂_in S|`.
pub fn isoperimetric_team_lower_bound(d: u32) -> u64 {
    let cube = Hypercube::new(d);
    let profile = min_inner_boundary_profile(cube);
    let n = cube.node_count();
    (1..n).map(|k| profile[k]).max().unwrap_or(0)
}

/// Brute-force `min_{|T|=k} |N(T)\T|` for every `k` — exponential; used by
/// the tests to validate the simplicial order for `d ≤ 4`.
pub fn brute_min_out_boundary_profile(cube: Hypercube) -> Vec<u64> {
    let n = cube.node_count();
    assert!(n <= 16, "brute force is 2^n");
    let mut best = vec![u64::MAX; n + 1];
    best[0] = 0;
    for mask in 0u32..(1u32 << n) {
        let k = mask.count_ones() as usize;
        if k == 0 {
            continue;
        }
        let mut boundary = 0u64;
        for i in 0..n {
            if mask & (1 << i) == 0 {
                let x = Node(i as u32);
                if cube.neighbors(x).any(|y| mask & (1 << y.index()) != 0) {
                    boundary += 1;
                }
            }
        }
        best[k] = best[k].min(boundary);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_topology::combinatorics as comb;

    #[test]
    fn simplicial_order_starts_with_balls() {
        let order = simplicial_order(Hypercube::new(3));
        // Weight 0 first, then the three weight-1 nodes (descending), …
        assert_eq!(order[0], Node(0));
        assert_eq!(&order[1..4], &[Node(4), Node(2), Node(1)]);
        assert_eq!(order.last(), Some(&Node(7)));
    }

    #[test]
    fn harper_profile_matches_brute_force_up_to_d4() {
        for d in 1..=4 {
            let cube = Hypercube::new(d);
            let harper = min_out_boundary_profile(cube);
            let brute = brute_min_out_boundary_profile(cube);
            assert_eq!(harper, brute, "Harper order is not optimal at d={d}");
        }
    }

    #[test]
    fn profile_endpoints_and_symmetry_basics() {
        let cube = Hypercube::new(6);
        let p = min_out_boundary_profile(cube);
        assert_eq!(p[0], 0);
        assert_eq!(p[cube.node_count()], 0);
        // A single node has out-boundary d.
        assert_eq!(p[1], 6);
        // n−1 nodes: the one outside node is the whole boundary.
        assert_eq!(p[cube.node_count() - 1], 1);
    }

    #[test]
    fn inner_profile_is_the_reflected_outer_profile() {
        let cube = Hypercube::new(5);
        let inner = min_inner_boundary_profile(cube);
        let outer = min_out_boundary_profile(cube);
        let n = cube.node_count();
        for k in 0..=n {
            assert_eq!(inner[k], outer[n - k]);
        }
    }

    #[test]
    fn lower_bound_small_dimensions() {
        // d ≤ 4: the connectivity-free isoperimetric bound vs the exact
        // connected optimum (7 at d = 4, computed by bounds.rs): the
        // relaxation can only be ≤.
        assert_eq!(isoperimetric_team_lower_bound(1), 1);
        assert_eq!(isoperimetric_team_lower_bound(2), 2);
        let lb3 = isoperimetric_team_lower_bound(3);
        assert!((3..=4).contains(&lb3), "lb3 = {lb3}");
        let lb4 = isoperimetric_team_lower_bound(4);
        assert!((5..=7).contains(&lb4), "lb4 = {lb4}");
    }

    #[test]
    fn lower_bound_never_exceeds_cleans_team() {
        for d in 1..=14 {
            let lb = u128::from(isoperimetric_team_lower_bound(d));
            let team = comb::clean_team_size(d);
            assert!(
                lb <= team,
                "d={d}: isoperimetric bound {lb} above CLEAN's team {team}"
            );
        }
    }

    #[test]
    fn lower_bound_grows_like_central_binomial() {
        // The bound is Θ(n/√log n), like CLEAN's team: their ratio stays
        // bounded — evidence (not proof) that CLEAN is near-optimal and
        // that the true complexity of the problem is n/√log n, not the
        // paper's conjectured n/log n.
        for d in (6..=16u32).step_by(2) {
            let lb = isoperimetric_team_lower_bound(d) as f64;
            let central = comb::binomial(d, d / 2) as f64;
            let ratio = lb / central;
            assert!((0.3..=1.2).contains(&ratio), "d={d}: LB/C(d,d/2) = {ratio}");
        }
    }

    #[test]
    fn bound_is_monotone_in_dimension() {
        let mut prev = 0;
        for d in 1..=12 {
            let lb = isoperimetric_team_lower_bound(d);
            assert!(lb >= prev, "d={d}");
            prev = lb;
        }
    }
}
