//! Contiguous search on trees — the previously solved case ([1] in the
//! paper: Barrière, Flocchini, Fraigniaud, Santoro, *Capture of an intruder
//! by mobile agents*).
//!
//! On a tree the optimal contiguous monotone strategy from a fixed
//! homebase follows a simple recurrence: a leaf needs one agent; an
//! internal node whose children's subtrees need `n_1 ≥ n_2 ≥ …` agents
//! needs `max(n_1, n_2 + 1)` (clean the cheaper subtrees first, keeping a
//! guard on the node, and descend with everything into the most expensive
//! subtree last); with a single child no extra guard is needed.
//!
//! Two uses here:
//!
//! * **Baseline** ([`TreeSearchPlan`]): generate the optimal strategy for
//!   any tree, replay it through the monitors, and measure moves — the
//!   known-good reference for the search problem the paper generalizes.
//! * **Negative control** ([`chord_blind_trace`]): run the same plan on
//!   the hypercube's broadcast tree while the *world* is the full
//!   hypercube. The plan ignores the chords, and the monitors catch
//!   recontamination immediately — demonstrating why the paper's
//!   chord-aware sweep order (Lemma 1) is essential.

use hypersweep_sim::{Event, EventKind, Metrics, Role};
use hypersweep_topology::graph::AdjGraph;
use hypersweep_topology::{BroadcastTree, Hypercube, Node, Topology};

/// Agents needed for each subtree of `tree` rooted at `root`
/// (`need[v]` for the subtree hanging below `v`).
pub fn tree_search_numbers(tree: &AdjGraph, root: Node) -> Vec<u32> {
    let n = tree.node_count();
    let parent = tree.bfs_spanning_tree(root);
    // Children lists and a post-order.
    let mut children: Vec<Vec<Node>> = vec![Vec::new(); n];
    for i in 0..n as u32 {
        let v = Node(i);
        let p = parent[v.index()];
        if v != root {
            children[p.index()].push(v);
        }
    }
    let mut order: Vec<Node> = Vec::with_capacity(n);
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        order.push(v);
        stack.extend(children[v.index()].iter().copied());
    }
    let mut need = vec![1u32; n];
    for &v in order.iter().rev() {
        let ch = &children[v.index()];
        if ch.is_empty() {
            need[v.index()] = 1;
            continue;
        }
        let mut needs: Vec<u32> = ch.iter().map(|c| need[c.index()]).collect();
        needs.sort_unstable_by(|a, b| b.cmp(a));
        need[v.index()] = if needs.len() == 1 {
            needs[0]
        } else {
            needs[0].max(needs[1] + 1)
        };
    }
    need
}

/// The optimal team size for contiguously searching `tree` from `root`.
pub fn tree_search_number(tree: &AdjGraph, root: Node) -> u32 {
    tree_search_numbers(tree, root)[root.index()]
}

/// A generated optimal tree-search plan: the trace plus its metrics.
#[derive(Clone, Debug)]
pub struct TreeSearchPlan {
    /// Team size (= the tree search number).
    pub team: u32,
    /// Total moves.
    pub moves: u64,
    /// The full event trace (spawns, moves, terminations).
    pub events: Vec<Event>,
}

/// Generate the optimal contiguous strategy for `tree` from `root`.
///
/// All agents spawn at the root; subtrees are cleaned cheapest-first with a
/// guard held on the branching node, and the whole squad descends into the
/// most expensive subtree last. Every agent ends parked somewhere in the
/// tree (agents cannot leave the network).
pub fn tree_search_plan(tree: &AdjGraph, root: Node) -> TreeSearchPlan {
    let n = tree.node_count();
    let need = tree_search_numbers(tree, root);
    let team = need[root.index()];
    let parent = tree.bfs_spanning_tree(root);
    let mut children: Vec<Vec<Node>> = vec![Vec::new(); n];
    for i in 0..n as u32 {
        let v = Node(i);
        if v != root {
            children[parent[v.index()].index()].push(v);
        }
    }
    let mut events = Vec::new();
    for id in 0..team {
        events.push(Event {
            time: 0,
            kind: EventKind::Spawn {
                agent: id,
                node: root,
                role: Role::Worker,
            },
        });
    }
    let mut moves: u64 = 0;

    // Clean each non-last subtree with its required squad and walk
    // everyone back to v, then descend with the full squad into the last
    // (most expensive) subtree.
    fn clean(
        v: Node,
        squad: &mut Vec<u32>,
        is_final_descent: bool,
        children: &[Vec<Node>],
        need: &[u32],
        events: &mut Vec<Event>,
        moves: &mut u64,
    ) {
        let mut ch = children[v.index()].clone();
        if ch.is_empty() {
            if is_final_descent {
                // End of the line: everyone rests here.
                for &id in squad.iter() {
                    events.push(Event {
                        time: 0,
                        kind: EventKind::Terminate { agent: id, node: v },
                    });
                }
            }
            return;
        }
        ch.sort_by_key(|c| need[c.index()]);
        let last = *ch.last().expect("non-empty");
        for &c in ch.iter().take(ch.len() - 1) {
            let take = need[c.index()] as usize;
            debug_assert!(squad.len() > take, "a guard must remain on {v}");
            let mut sub: Vec<u32> = squad.split_off(squad.len() - take);
            move_group(&sub, v, c, events, moves);
            clean(c, &mut sub, false, children, need, events, moves);
            move_group(&sub, c, v, events, moves);
            squad.append(&mut sub);
        }
        // Final subtree: descend with the whole squad (the guard of v goes
        // along; v stays clean because all other neighbours are clean).
        let sub = squad.clone();
        move_group(&sub, v, last, events, moves);
        clean(last, squad, is_final_descent, children, need, events, moves);
        if !is_final_descent {
            // We must come back up to return to our caller.
            move_group(squad, last, v, events, moves);
        }
    }

    fn move_group(group: &[u32], from: Node, to: Node, events: &mut Vec<Event>, moves: &mut u64) {
        for &id in group {
            *moves += 1;
            events.push(Event {
                time: 0,
                kind: EventKind::Move {
                    agent: id,
                    from,
                    to,
                    role: Role::Worker,
                },
            });
        }
    }

    let mut squad: Vec<u32> = (0..team).collect();
    clean(
        root,
        &mut squad,
        true,
        &children,
        &need,
        &mut events,
        &mut moves,
    );

    TreeSearchPlan {
        team,
        moves,
        events,
    }
}

/// Replay the optimal plan for the hypercube's broadcast tree while the
/// *actual* graph is the hypercube — the chord-blind negative control.
/// Returns the trace; auditing it against the hypercube shows
/// recontamination (the plan is only correct on the tree itself).
pub fn chord_blind_trace(cube: Hypercube) -> Vec<Event> {
    let tree = BroadcastTree::new(cube);
    let mut g = AdjGraph::with_nodes(cube.node_count());
    for x in cube.nodes() {
        for c in tree.children(x) {
            g.add_edge(x, c);
        }
    }
    tree_search_plan(&g, Node::ROOT).events
}

/// Convenience: metrics for a plan (for comparison tables).
pub fn plan_metrics(plan: &TreeSearchPlan) -> Metrics {
    Metrics {
        worker_moves: plan.moves,
        coordinator_moves: 0,
        team_size: u64::from(plan.team),
        peak_away: u64::from(plan.team),
        ideal_time: None,
        activations: plan.moves,
        peak_board_bits: 0,
        peak_local_bits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersweep_intruder::{verify_trace, MonitorConfig};
    use hypersweep_topology::graph::{Path, Star};

    #[test]
    fn path_needs_two_agents_from_an_end() {
        // From an endpoint, a path is cleaned by a walker plus nothing —
        // wait: a single agent moving right vacates nodes whose right
        // neighbour is contaminated. The recurrence: every internal node
        // has one child → need = 1. And indeed one agent suffices: when it
        // leaves v, v's only contaminated-side neighbour is the one it just
        // guarded. Check via the monitors.
        let g = AdjGraph::from_topology(&Path::new(6));
        assert_eq!(tree_search_number(&g, Node(0)), 1);
        let plan = tree_search_plan(&g, Node(0));
        let verdict = verify_trace(&g, Node(0), &plan.events, MonitorConfig::default());
        assert!(verdict.is_complete(), "{:?}", verdict.violations);
        assert_eq!(plan.moves, 5);
    }

    #[test]
    fn star_needs_two_agents_from_the_center() {
        let g = AdjGraph::from_topology(&Star::new(8));
        assert_eq!(tree_search_number(&g, Node(0)), 2);
        let plan = tree_search_plan(&g, Node(0));
        let verdict = verify_trace(&g, Node(0), &plan.events, MonitorConfig::default());
        assert!(verdict.is_complete(), "{:?}", verdict.violations);
    }

    #[test]
    fn complete_binary_tree_search_number_grows_logarithmically() {
        // A complete binary tree of height h needs h+1 agents from the
        // root (recurrence: f(h) = f(h−1) + 1 with two equal children).
        for h in 1..=6u32 {
            let levels = h + 1;
            let n = (1usize << levels) - 1;
            let mut g = AdjGraph::with_nodes(n);
            for i in 1..n as u32 {
                g.add_edge(Node(i), Node((i - 1) / 2));
            }
            assert_eq!(tree_search_number(&g, Node(0)), h + 1, "height {h}");
            let plan = tree_search_plan(&g, Node(0));
            let verdict = verify_trace(&g, Node(0), &plan.events, MonitorConfig::default());
            assert!(verdict.is_complete(), "h={h}: {:?}", verdict.violations);
        }
    }

    #[test]
    fn broadcast_tree_of_hd_needs_d_over_2_plus_1_agents() {
        // The binomial tree B_d: needs(B_k) = max over its sub-binomial
        // trees; the recurrence yields ⌈d/2⌉ + 1 for d ≥ 2. Check the
        // implementation against the plan's own audit on the tree world.
        for d in 2..=9u32 {
            let cube = Hypercube::new(d);
            let tree = BroadcastTree::new(cube);
            let mut g = AdjGraph::with_nodes(cube.node_count());
            for x in cube.nodes() {
                for c in tree.children(x) {
                    g.add_edge(x, c);
                }
            }
            let number = tree_search_number(&g, Node::ROOT);
            assert_eq!(number, d / 2 + 1, "B_{d}");
            let plan = tree_search_plan(&g, Node::ROOT);
            let verdict = verify_trace(&g, Node::ROOT, &plan.events, MonitorConfig::default());
            assert!(verdict.is_complete(), "d={d}: {:?}", verdict.violations);
        }
    }

    #[test]
    fn chord_blind_plan_recontaminates_the_hypercube() {
        // The same trace is perfect on the tree but catastrophically wrong
        // on the hypercube: the monitors must flag recontamination.
        for d in 3..=6 {
            let cube = Hypercube::new(d);
            let trace = chord_blind_trace(cube);
            let verdict = verify_trace(&cube, Node::ROOT, &trace, MonitorConfig::default());
            assert!(
                !verdict.monotone,
                "d={d}: chord-blind plan must recontaminate"
            );
        }
    }

    #[test]
    fn plans_use_exactly_the_computed_team() {
        let g = AdjGraph::from_topology(&Star::new(12));
        let plan = tree_search_plan(&g, Node(3)); // homebase at a leaf
        let verdict = verify_trace(&g, Node(3), &plan.events, MonitorConfig::default());
        assert!(verdict.is_complete(), "{:?}", verdict.violations);
        assert_eq!(u64::from(plan.team), plan_metrics(&plan).team_size);
    }
}
