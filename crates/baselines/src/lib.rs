//! Baseline decontamination strategies and reference bounds.
//!
//! The paper's contribution is best appreciated against what simpler
//! approaches cost. This crate provides:
//!
//! * [`FloodStrategy`] — the trivial maximal-team upper bound: `n` agents
//!   flood the broadcast tree leaving a permanent guard everywhere;
//!   `(n/2)·log n` moves, `log n` time. No agent is ever reused.
//! * [`FrontierStrategy`] — the naive level sweep: guard an entire BFS
//!   level, fully guard the next, then retire the old level to the root
//!   pool. It needs `max_l [C(d,l) + C(d,l+1)]` agents — asymptotically
//!   ~1.6× Algorithm CLEAN's team — and `n·log n` moves (~2× CLEAN),
//!   quantifying what the synchronizer's leaf-recall scheme buys.
//! * [`tree_search`] — contiguous search on trees (the only previously
//!   solved topology, Barrière et al. [1]): the optimal-team recurrence,
//!   a strategy generator, and the negative control showing that running
//!   the tree strategy on the hypercube's spanning tree while ignoring the
//!   chords immediately recontaminates.
//! * [`bounds`] — the exact optimal contiguous monotone boundary bound for
//!   small graphs (Dijkstra over connected vertex sets minimizing the peak
//!   guarded boundary), used to position the paper's team sizes against
//!   the true optimum (§5 leaves optimality open).
//! * [`isoperimetry`] — Harper's vertex-isoperimetric theorem applied to
//!   the team-size question: a rigorous `Θ(n/√log n)` lower bound for
//!   every dimension, squeezing Algorithm CLEAN from below.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod flood;
pub mod frontier;
pub mod isoperimetry;
pub mod other_topologies;
pub mod planner;
pub mod tree_search;

pub use bounds::{boundary_optimum, BoundaryOptimum};
pub use flood::FloodStrategy;
pub use frontier::FrontierStrategy;
pub use isoperimetry::isoperimetric_team_lower_bound;
pub use other_topologies::{ring_plan, torus_plan};
pub use planner::{greedy_plan, GreedyPlan};
pub use tree_search::{tree_search_number, TreeSearchPlan};
