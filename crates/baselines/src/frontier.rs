//! The naive frontier sweep — a level-synchronous baseline without the
//! paper's leaf-recall trick.
//!
//! Phase `l`: with level `l` fully guarded, fresh agents from the root pool
//! walk up (through clean levels, passing through the guarded frontier)
//! and occupy *every* node of level `l + 1`; only then do the level-`l`
//! guards retire to the root pool. Correct and simple, but the team must
//! hold two adjacent full levels at once:
//! `max_l [C(d,l) + C(d,l+1)]` agents — versus CLEAN's
//! `max_l [C(d,l+1) + C(d−1,l−1)]` (Lemma 4). Every node is visited by a
//! dedicated round-trip journey, so moves total `Σ_v 2·level(v) = n·log n`
//! — versus CLEAN's `(n/2)(log n + 1)`.

use hypersweep_core::outcome::{streamed_outcome, synthesized_outcome, SearchOutcome};
use hypersweep_sim::{Event, EventKind, EventSink, Metrics, NullSink, Role};
use hypersweep_topology::combinatorics as comb;
use hypersweep_topology::{BroadcastTree, Hypercube, Node};

/// The frontier-sweep baseline (centralized plan; audited like any trace).
#[derive(Clone, Copy, Debug)]
pub struct FrontierStrategy {
    cube: Hypercube,
}

impl FrontierStrategy {
    /// Build the strategy for `cube` (`d ≥ 1`).
    pub fn new(cube: Hypercube) -> Self {
        assert!(cube.dim() >= 1, "H_0 has nothing to search");
        FrontierStrategy { cube }
    }

    /// Exact team size: `1 + max_l [C(d,l) + C(d,l+1)]` — the `+1` keeps a
    /// guard on the homebase through phase 1 so contiguity never hinges on
    /// the pool being non-empty.
    pub fn team_size(&self) -> u64 {
        let d = self.cube.dim();
        let peak = (0..d)
            .map(|l| comb::nodes_at_level(d, l) + comb::nodes_at_level(d, l + 1))
            .max()
            .unwrap_or(1);
        u64::try_from(peak).expect("team fits in u64") + 1
    }

    /// Exact total moves: one round trip per node, `Σ_v 2·level(v) = n·d`.
    pub fn predicted_moves(&self) -> u128 {
        let d = self.cube.dim();
        comb::pow2(d) * u128::from(d)
    }

    /// Synthesize the plan, buffering the events into a `Vec` when
    /// `record_events` is set. Thin wrapper over
    /// [`FrontierStrategy::synthesize_into`].
    pub fn synthesize(&self, record_events: bool) -> (Metrics, Option<Vec<Event>>) {
        if record_events {
            let mut events = Vec::new();
            let metrics = self.synthesize_into(&mut events);
            (metrics, Some(events))
        } else {
            (self.synthesize_into(&mut NullSink), None)
        }
    }

    /// Synthesize the plan, streaming every event into `sink`.
    pub fn synthesize_into(&self, sink: &mut dyn EventSink) -> Metrics {
        let cube = self.cube;
        let d = cube.dim();
        let tree = BroadcastTree::new(cube);
        let n = cube.node_count();
        let team = self.team_size();
        let mut time: u64 = 0;
        let mut moves: u64 = 0;
        let mut away: u64 = 0;
        let mut peak_away: u64 = 0;
        let mut pool: Vec<u32> = (0..team as u32).rev().collect();
        let mut guard: Vec<Option<u32>> = vec![None; n];

        macro_rules! emit {
            ($kind:expr) => {
                time += 1;
                sink.emit(Event { time, kind: $kind });
            };
        }
        macro_rules! mv {
            ($id:expr, $from:expr, $to:expr) => {
                moves += 1;
                match ($from == Node::ROOT, $to == Node::ROOT) {
                    (true, false) => {
                        away += 1;
                        peak_away = peak_away.max(away);
                    }
                    (false, true) => away -= 1,
                    _ => {}
                }
                emit!(EventKind::Move {
                    agent: $id,
                    from: $from,
                    to: $to,
                    role: Role::Worker,
                });
            };
        }

        for id in 0..team as u32 {
            emit!(EventKind::Spawn {
                agent: id,
                node: Node::ROOT,
                role: Role::Worker,
            });
        }
        // The homebase's own guard.
        let home_guard = pool.pop().expect("team ≥ 1");
        guard[Node::ROOT.index()] = Some(home_guard);

        for l in 0..d {
            // Guard all of level l+1 with fresh journeys from the root.
            for x in cube.level_nodes(l + 1) {
                let w = pool.pop().expect("frontier team suffices");
                let mut pos = Node::ROOT;
                for hop in tree.root_path(x) {
                    mv!(w, pos, hop);
                    pos = hop;
                }
                guard[x.index()] = Some(w);
            }
            // Retire all of level l.
            for x in cube.level_nodes(l) {
                let w = guard[x.index()].take().expect("level l was guarded");
                let mut pos = x;
                while pos != Node::ROOT {
                    let next = pos.flip(pos.msb_position());
                    mv!(w, pos, next);
                    pos = next;
                }
                pool.push(w);
            }
        }
        // Everyone terminates: pooled agents at the root, level-d guards in
        // place (the far corner stays guarded like every search's endgame).
        for x in cube.level_nodes(d) {
            if let Some(w) = guard[x.index()] {
                emit!(EventKind::Terminate { agent: w, node: x });
            }
        }
        for &w in &pool {
            emit!(EventKind::Terminate {
                agent: w,
                node: Node::ROOT,
            });
        }

        Metrics {
            worker_moves: moves,
            coordinator_moves: 0,
            team_size: team,
            peak_away,
            ideal_time: None,
            activations: moves,
            peak_board_bits: 0,
            peak_local_bits: 0,
        }
    }

    /// Synthesize and audit.
    pub fn outcome(&self, audit: bool) -> SearchOutcome {
        if audit {
            streamed_outcome(self.cube, |sink| self.synthesize_into(sink))
        } else {
            synthesized_outcome(self.cube, self.synthesize_into(&mut NullSink), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_sweep_is_a_correct_search() {
        for d in 1..=8 {
            let s = FrontierStrategy::new(Hypercube::new(d));
            let o = s.outcome(true);
            assert!(o.is_complete(), "d={d}: {:?}", o.verdict.violations);
        }
    }

    #[test]
    fn moves_equal_one_round_trip_per_node() {
        for d in 1..=10 {
            let s = FrontierStrategy::new(Hypercube::new(d));
            let (metrics, _) = s.synthesize(false);
            // Σ_v 2·level(v) = d·n, but level-d guards never walk back:
            // subtract their return legs Σ_{v: level d} level(v) = d.
            let expect = s.predicted_moves() - u128::from(d);
            assert_eq!(u128::from(metrics.worker_moves), expect, "d={d}");
        }
    }

    #[test]
    fn team_is_two_adjacent_levels() {
        let s = FrontierStrategy::new(Hypercube::new(6));
        // C(6,3)+C(6,2) = 20+15 = 35, plus the homebase guard.
        assert_eq!(s.team_size(), 36);
    }

    #[test]
    fn frontier_needs_more_agents_than_clean() {
        for d in 4..=14u32 {
            let frontier = FrontierStrategy::new(Hypercube::new(d)).team_size();
            let clean = comb::clean_team_size(d);
            assert!(
                u128::from(frontier) > clean,
                "d={d}: frontier {frontier} vs clean {clean}"
            );
        }
    }

    #[test]
    fn peak_away_stays_within_team() {
        for d in 2..=8 {
            let s = FrontierStrategy::new(Hypercube::new(d));
            let (m, _) = s.synthesize(false);
            assert!(m.peak_away <= m.team_size);
        }
    }
}
