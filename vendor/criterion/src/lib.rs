//! Offline stand-in for `criterion`, vendored because this build environment
//! has no access to crates.io. Keeps the criterion API shape the workspace's
//! benches use (groups, throughput, `bench_with_input`, `criterion_group!`)
//! but measures with a simple time-bounded loop and prints one line per
//! benchmark — no statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Top-level bench context; hands out groups.
pub struct Criterion {
    /// Wall-clock budget spent measuring each benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 100,
        }
    }
}

/// Unit used to report per-second rates alongside times.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count (scales measuring time down for
    /// expensive benches, mirroring criterion's use of small sample sizes).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Report a rate together with the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = self.make_bencher();
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = self.make_bencher();
        f(&mut bencher);
        self.report(&id.id, &bencher);
        self
    }

    /// End the group (printing happens per-bench; this is for API parity).
    pub fn finish(self) {}

    fn make_bencher(&self) -> Bencher {
        // Small nominal sample sizes signal an expensive bench: shrink the
        // budget so full suites stay fast.
        let scale = (self.sample_size.min(100) as u32).max(1);
        Bencher {
            measure_for: self.criterion.measure_for * scale / 100,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let iters = bencher.iters.max(1);
        let per_iter = bencher.elapsed.as_nanos() / iters as u128;
        let mut line = format!(
            "{}/{}: {} iters, {} ns/iter",
            self.name, id, bencher.iters, per_iter
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if per_iter > 0 {
                let rate = count as f64 * 1e9 / per_iter as f64;
                line.push_str(&format!(", {rate:.0} {unit}/s"));
            }
        }
        println!("{line}");
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    measure_for: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        std::hint::black_box(f());
        let budget = self.measure_for.max(Duration::from_millis(1));
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Bundle bench functions into a named runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (CLI filter args are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls >= 2, "warm-up plus at least one measured call");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 6).id, "f/6");
        assert_eq!(BenchmarkId::from_parameter(9).id, "9");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.id, "plain");
    }

    #[test]
    fn groups_share_settings() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(1), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
    }
}
