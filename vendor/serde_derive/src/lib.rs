//! Offline stand-in for `serde_derive`, vendored because this build
//! environment has no access to crates.io (and therefore no `syn`/`quote`
//! either — the input is parsed directly from the token stream).
//!
//! Supports exactly the shapes this workspace derives:
//! plain structs with named fields, tuple structs (newtype structs
//! serialize transparently, like real serde), unit structs, and enums whose
//! variants are unit, newtype, tuple, or struct-like — externally tagged,
//! matching real serde's default representation. Generics and `#[serde]`
//! attributes are not supported and fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated impl parses")
}

/// Derive `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated impl parses")
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Shape {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip `#[...]` attributes (including doc comments).
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("expected attribute brackets after '#', got {other:?}"),
            }
        }
    }

    /// Skip `pub`, `pub(...)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected identifier, got {other:?}"),
        }
    }

    /// Skip a type, stopping at a top-level `,` (consumed) or end of stream.
    /// Tracks `<`/`>` nesting; parens/brackets/braces arrive as single
    /// group tokens so only angle brackets need counting.
    fn skip_type_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize): generics are not supported by the vendored serde_derive");
        }
    }
    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(name, Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(name, Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(name, Fields::Unit),
            other => panic!("unexpected token after struct name: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(name, parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("expected struct or enum, got '{other}'"),
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        let field = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field '{field}', got {other:?}"),
        }
        c.skip_type_until_comma();
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0;
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        c.skip_type_until_comma();
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle = 0i32;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    c.next();
                    break;
                }
                _ => {}
            }
            c.next();
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen (string-built; parsed back into a TokenStream by the caller).

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct(name, Fields::Named(fields)) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::serialize_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Struct(name, Fields::Tuple(1)) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::serialize_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Struct(name, Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Struct(name, Fields::Unit) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::serialize_value(x0))]),\n"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pushes: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), \
                                     ::serde::Serialize::serialize_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            pushes.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn named_fields_body(type_path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value(\
                 ::serde::get_field({src}, \"{f}\"))?"
            )
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct(name, Fields::Named(fields)) => {
            let body = named_fields_body(name, fields, "obj");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         Ok({body})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Struct(name, Fields::Tuple(1)) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::deserialize_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Struct(name, Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let items = v.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if items.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\"wrong tuple arity for {name}\"));\n\
                         }}\n\
                         Ok({name}({}))\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Struct(name, Fields::Unit) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(_v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum(name, variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| match fields {
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize_value(payload)?)),\n"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                            })
                            .collect();
                        format!(
                            "\"{v}\" => {{\n\
                                 let items = payload.as_array().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::Error::custom(\
                                         \"wrong arity for {name}::{v}\"));\n\
                                 }}\n\
                                 Ok({name}::{v}({}))\n\
                             }}\n",
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let body = named_fields_body(&format!("{name}::{v}"), fs, "obj");
                        format!(
                            "\"{v}\" => {{\n\
                                 let obj = payload.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                                 Ok({body})\n\
                             }}\n"
                        )
                    }
                    Fields::Unit => unreachable!(),
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::Error::custom(format!(\
                                     \"unknown {name} variant '{{other}}'\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, payload) = &fields[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => Err(::serde::Error::custom(format!(\
                                         \"unknown {name} variant '{{other}}'\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::custom(\"expected {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
