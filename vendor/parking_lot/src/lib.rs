//! Offline stand-in for `parking_lot`, vendored because this build
//! environment has no access to crates.io. Wraps `std::sync` primitives in
//! the parking_lot API shape: `lock()` returns the guard directly (poisoning
//! is swallowed — a panicking holder does not wedge other threads),
//! `Mutex::into_inner` returns the value, and `Condvar::wait_for` takes the
//! guard by `&mut`.

use std::sync::{self, WaitTimeoutResult};
use std::time::Duration;

/// Mutex with parking_lot's panic-tolerant `lock()` signature.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait_for`] can move it through the std wait call and put it
/// back, all behind a `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable whose wait methods reborrow the guard instead of
/// consuming it.
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Block until notified or `timeout` elapses. Returns the std
    /// [`WaitTimeoutResult`] so callers can ask `timed_out()`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        result
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    #[test]
    fn lock_roundtrip_and_into_inner() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
        // The guard must still be usable after the wait.
        drop(g);
        assert!(matches!(m.lock().0.as_deref(), Some(())));
    }

    #[test]
    fn wait_for_sees_notifications() {
        static DONE: AtomicBool = AtomicBool::new(false);
        let m = std::sync::Arc::new(Mutex::new(false));
        let cv = std::sync::Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            *m2.lock() = true;
            DONE.store(true, Ordering::SeqCst);
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(1));
        }
        drop(g);
        t.join().unwrap();
        assert!(DONE.load(Ordering::SeqCst));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
