//! Offline stand-in for `proptest`, vendored because this build environment
//! has no access to crates.io. Provides the subset this workspace's property
//! tests use: integer-range / tuple / `Just` / `collection::vec` strategies,
//! `prop_map` / `prop_flat_map`, and the `proptest!` / `prop_assert!` macros.
//!
//! Unlike the real proptest there is no shrinking and no failure
//! persistence; cases are drawn from a deterministic RNG seeded by the test
//! path, so failures reproduce exactly on rerun.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic random source (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the fully qualified test name, so each test draws a stable
    /// but distinct sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `[lo, hi]` (modulo bias is acceptable for test
    /// data generation).
    fn in_closed(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
    {
        Map {
            base: self,
            f,
            _out: PhantomData,
        }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F, T>
    where
        Self: Sized,
    {
        FlatMap {
            base: self,
            f,
            _next: PhantomData,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F, O> {
    base: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F, O> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, T> {
    base: S,
    f: F,
    _next: PhantomData<fn() -> T>,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F, T> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_closed(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_closed(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{SizeBound, Strategy, TestRng};

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// A `Vec` whose length is drawn from `size` (a `usize` for an exact
    /// length, or a range) and whose elements come from `element`.
    pub fn vec<S: Strategy, L: SizeBound>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeBound> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Length specifications accepted by [`collection::vec`].
pub trait SizeBound {
    /// Choose a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeBound for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeBound for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        rng.in_closed(self.start as u64, self.end as u64 - 1) as usize
    }
}

impl SizeBound for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.in_closed(*self.start() as u64, *self.end() as u64) as usize
    }
}

/// Knobs for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines `#[test]` functions that run their body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; peels one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || -> Result<(), String> {
                    $body
                    Ok(())
                };
                if let Err(msg) = __run() {
                    panic!("case {} failed: {}", __case, msg);
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Like `assert!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// The names property tests conventionally import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(d in 1u32..=10, s in 0u64..1000) {
            prop_assert!((1..=10).contains(&d));
            prop_assert!(s < 1000);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in collection::vec(0u32..5, 3usize), w in collection::vec(0u32..5, 1..4usize)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..4).contains(&w.len()));
            prop_assert!(v.iter().chain(&w).all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_and_map_compose() {
        let strat = (2usize..=6)
            .prop_flat_map(|n| (Just(n), collection::vec(0u32..10, n)))
            .prop_map(|(n, items)| (n, items.len()));
        let mut rng = TestRng::for_test("compose");
        for _ in 0..50 {
            let (n, len) = strat.generate(&mut rng);
            assert_eq!(n, len);
            assert!((2..=6).contains(&n));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
