//! Offline stand-in for `serde_json`, vendored because this build
//! environment has no access to crates.io.
//!
//! Provides the workspace's used surface: [`to_string`], [`to_string_pretty`]
//! (2-space indentation, like real serde_json), [`from_str`], and the
//! [`Error`] type. All conversions go through the vendored `serde`'s owned
//! [`Value`] tree.

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// A `Result` specialized to JSON errors.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON text (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::deserialize_value(&value)
}

/// Parse JSON text into a [`Value`].
pub fn from_str_value(s: &str) -> Result<Value> {
    parse(s)
}

// ---------------------------------------------------------------------------
// Writer.

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(x) => out.push_str(&x.to_string()),
        Number::I(x) => out.push_str(&x.to_string()),
        Number::F(x) => {
            if x.is_finite() {
                // Match serde_json's convention that floats always carry a
                // fractional part or exponent.
                let s = format!("{x}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    out.push_str(&s);
                } else {
                    out.push_str(&s);
                    out.push_str(".0");
                }
            } else {
                // Real serde_json errors on non-finite floats; the
                // workspace never serializes them, so render null like
                // JavaScript's JSON.stringify as a safe fallback.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Handle surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("bad unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    /// Four hex digits at the cursor (cursor already past `\u`).
    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("bad unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|x| Value::Number(Number::F(x)))
                .map_err(|e| Error::custom(format!("bad float '{text}': {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|x| Value::Number(Number::I(x)))
                .map_err(|e| Error::custom(format!("bad integer '{text}': {e}")))
        } else {
            text.parse::<u64>()
                .map(|x| Value::Number(Number::U(x)))
                .map_err(|e| Error::custom(format!("bad integer '{text}': {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&4.0f64).unwrap(), "4.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Escaped input parses too.
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_matches_serde_json_style() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::U(1))),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<Vec<u64>>("[1,2,]").is_err());
    }
}
