//! Offline stand-in for `rand_chacha`, vendored because this build
//! environment has no access to crates.io. Implements the ChaCha8 keystream
//! as a deterministic RNG behind the [`rand`] trait surface.
//!
//! Note: the word stream is a faithful ChaCha8 keystream, but the
//! `next_u32`/`next_u64` framing is this crate's own, so sequences are not
//! bit-compatible with the upstream `rand_chacha` crate. Within this
//! workspace that is fine — all consumers only need seeded determinism.

use rand::{RngCore, SeedableRng};

/// Deterministic RNG driven by the ChaCha stream cipher with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    /// Current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "exhausted".
    word: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] stay zero (unused nonce words).
        let input = state;
        for _ in 0..4 {
            // 4 double-rounds = 8 ChaCha rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.word = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(17);
        let mut b = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn blocks_change_across_refills() {
        // Draw more than one 16-word block and check the stream keeps moving.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first = rng.next_u32();
        let mut repeats = 0;
        for _ in 0..48 {
            if rng.next_u32() == first {
                repeats += 1;
            }
        }
        assert!(repeats < 3, "keystream looks stuck: {repeats} repeats");
    }
}
