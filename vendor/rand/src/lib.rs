//! Offline stand-in for `rand`, vendored because this build environment has
//! no access to crates.io. Covers the surface the workspace uses:
//! [`Rng::random_range`] over integer ranges and
//! [`SeedableRng::seed_from_u64`].

use std::ops::Range;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open).
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types [`Rng::random_range`] can sample.
pub trait UniformInt: Copy {
    /// Uniform sample in `[range.start, range.end)`.
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased u64 in `[0, bound)` by rejection sampling over the widening
/// multiply (Lemire's method).
fn uniform_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected: a biased low fragment; resample.
    }
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
impl_uniform!(u32, u64, usize);

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded with SplitMix64 (the same
    /// construction the real `rand` uses, so small seeds diffuse well).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Step(42);
        for _ in 0..1000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = Step(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
