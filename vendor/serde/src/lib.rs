//! Offline stand-in for `serde`, vendored because this build environment has
//! no access to crates.io.
//!
//! The real serde is a zero-copy streaming framework; this stand-in goes
//! through an owned [`Value`] tree instead, which is entirely sufficient for
//! the workspace's needs (JSON export/import of experiment results, traces
//! and metrics). The public surface mirrors what the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (re-exported from `serde_derive`),
//! * the [`Serialize`] / [`Deserialize`] traits with impls for the std types
//!   the repo serializes,
//! * JSON-compatible data shapes matching real serde's defaults: structs as
//!   objects, newtype structs as their inner value, externally tagged enums.
//!
//! `serde_json` (also vendored) renders [`Value`] to JSON text and back.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map) so that
/// serialization is deterministic and follows struct declaration order,
/// exactly like real `serde_json` with default features.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers.
    Number(Number),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: signed, unsigned, or floating.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Value {
    /// The fields of an object, or `None`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a field in an object's field list; missing fields read as `Null`
/// (so `Option<T>` fields tolerate omission, like real serde).
pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// A deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Convert from the value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls.

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Number(Number::I(n)) if *n >= 0 => <$t>::try_from(*n as u64)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::U(n as u64))
                } else {
                    Value::Number(Number::I(n))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Number(Number::I(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_value(&self) -> Value {
        // JSON numbers above u64 would need arbitrary precision; the
        // workspace never serializes such values (big counts are formatted
        // into strings first).
        Value::Number(Number::U(
            u64::try_from(*self).expect("u128 value exceeds the JSON-safe u64 range"),
        ))
    }
}

impl Deserialize for u128 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        u64::deserialize_value(v).map(u128::from)
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(Number::F(x)) => Ok(*x),
            Value::Number(Number::U(n)) => Ok(*n as f64),
            Value::Number(Number::I(n)) => Ok(*n as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = String::deserialize_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::deserialize_value(a)?, B::deserialize_value(b)?)),
            _ => Err(Error::custom("expected two-element array")),
        }
    }
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort for determinism; real serde_json leaves hash order, but
        // deterministic output is strictly better for this workspace.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u64>::deserialize_value(&Value::Null), Ok(None));
        let v = Some(7u64).serialize_value();
        assert_eq!(Option::<u64>::deserialize_value(&v), Ok(Some(7)));
    }

    #[test]
    fn missing_field_reads_null() {
        let fields = vec![("a".to_string(), Value::Bool(true))];
        assert_eq!(get_field(&fields, "b"), &Value::Null);
    }

    #[test]
    fn signed_crossover() {
        let v = (-3i64).serialize_value();
        assert_eq!(i64::deserialize_value(&v), Ok(-3));
        let v = 3i64.serialize_value();
        assert_eq!(u64::deserialize_value(&v), Ok(3));
    }
}
