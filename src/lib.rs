//! `hypersweep` — contiguous search in the hypercube for capturing an
//! intruder.
//!
//! A complete reproduction of *"Contiguous Search in the Hypercube for
//! Capturing an Intruder"* (P. Flocchini, M. J. Huang, F. L. Luccio,
//! IPPS 2005): the hypercube/broadcast-tree substrate, an asynchronous
//! mobile-agent simulator with whiteboards and adversarial schedulers, the
//! paper's two cleaning strategies (plus its cloning and synchronous
//! variants), baseline strategies, contamination monitors with an explicit
//! evading intruder, and an experiment harness regenerating every result of
//! the paper.
//!
//! This crate is a façade re-exporting the workspace members under stable
//! names; see [`prelude`] for the items most programs need.
//!
//! # Quick start
//!
//! ```
//! use hypersweep::prelude::*;
//!
//! // Clean H_6 with the visibility strategy under the synchronous
//! // schedule and verify the paper's Theorems 5, 7, 8.
//! let cube = Hypercube::new(6);
//! let outcome = VisibilityStrategy::new(cube)
//!     .run(Policy::Synchronous)
//!     .expect("search completes");
//! assert!(outcome.is_complete()); // monotone, contiguous, intruder caught
//! assert_eq!(outcome.metrics.team_size, 32);               // n/2
//! assert_eq!(outcome.metrics.ideal_time, Some(6));         // log n
//! assert_eq!(outcome.metrics.total_moves(), 112);          // (n/4)(log n + 1)
//! ```

#![forbid(unsafe_code)]

pub use hypersweep_analysis as analysis;
pub use hypersweep_baselines as baselines;
pub use hypersweep_check as check;
pub use hypersweep_core as core;
pub use hypersweep_intruder as intruder;
pub use hypersweep_scenario as scenario;
pub use hypersweep_server as server;
pub use hypersweep_sim as sim;
pub use hypersweep_telemetry as telemetry;
pub use hypersweep_topology as topology;

/// The items most programs need.
pub mod prelude {
    pub use hypersweep_core::{
        CleanStrategy, CloningStrategy, SearchOutcome, SearchStrategy, StrategyError,
        SynchronousStrategy, VisibilityStrategy,
    };
    pub use hypersweep_intruder::{
        verify_trace, CaptureStatus, EvaderPolicy, Intruder, Monitor, MonitorConfig, Verdict,
    };
    pub use hypersweep_sim::{Metrics, Policy};
    pub use hypersweep_topology::{BroadcastTree, Hypercube, Node};
}
